package recfile

import (
	"testing"
	"time"

	"spatialjoin/internal/diskio"
	"spatialjoin/internal/geom"
)

// writeKPEs writes n KPEs through the framed writer, failing the test on
// any error.
func writeKPEs(t *testing.T, f *diskio.File, n int) []geom.KPE {
	t.Helper()
	w := NewKPEWriter(f, 2)
	ks := make([]geom.KPE, 0, n)
	for i := 0; i < n; i++ {
		k := geom.KPE{ID: uint64(i), Rect: geom.NewRect(0, 0, 1, 1)}
		if err := w.Write(k); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		ks = append(ks, k)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return ks
}

// TestTransientFaultsRetriedTransparently: under a transient-only fault
// schedule the framed layer retries and the stream round-trips exactly,
// with the retries visible on the disk stats.
func TestTransientFaultsRetriedTransparently(t *testing.T) {
	d := diskio.NewDisk(256, 5, time.Millisecond)
	d.SetFaultPolicy(diskio.NewFaultPolicy(diskio.FaultConfig{
		Seed:               21,
		TransientReadRate:  0.3,
		TransientWriteRate: 0.3,
	}))
	f := d.Create("k")
	want := writeKPEs(t, f, 2000)
	got, err := ReadAllKPEs(f, 2)
	if err != nil {
		t.Fatalf("transient faults must be retried away: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("record %d corrupted by retry", i)
		}
	}
	if st := d.Stats(); st.Retries == 0 {
		t.Fatal("retries must be counted on the disk stats")
	}
	if fs := d.FaultPolicy().Stats(); fs.TransientReads == 0 || fs.TransientWrites == 0 {
		t.Fatalf("schedule vacuous: %+v", fs)
	}
}

// TestTornWriteDetected: a torn write is silent at the diskio layer but
// must surface as a CorruptError when the stream is read.
func TestTornWriteDetected(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		d := diskio.NewDisk(256, 5, time.Millisecond)
		fp := diskio.NewFaultPolicy(diskio.FaultConfig{Seed: seed, TornWriteRate: 0.5})
		d.SetFaultPolicy(fp)
		f := d.Create("k")
		w := NewKPEWriter(f, 1)
		for i := 0; i < 800; i++ {
			if err := w.Write(geom.KPE{ID: uint64(i)}); err != nil {
				t.Fatalf("seed %d: torn writes must be silent on write: %v", seed, err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if fp.Stats().TornWrites == 0 {
			continue // schedule tore nothing this seed
		}
		fp.Disable()
		_, err := ReadAllKPEs(f, 2)
		if err == nil {
			t.Fatalf("seed %d: %d torn writes went undetected", seed, fp.Stats().TornWrites)
		}
		if !IsCorrupt(err) {
			t.Fatalf("seed %d: want CorruptError, got %v", seed, err)
		}
	}
}

// TestBitFlipDetected: a single flipped bit anywhere in the stream must
// fail the frame checksum.
func TestBitFlipDetected(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		d := diskio.NewDisk(256, 5, time.Millisecond)
		fp := diskio.NewFaultPolicy(diskio.FaultConfig{Seed: seed, BitFlipRate: 0.5})
		d.SetFaultPolicy(fp)
		f := d.Create("k")
		writeKPEs(t, f, 800)
		if fp.Stats().BitFlips == 0 {
			continue
		}
		fp.Disable()
		_, err := ReadAllKPEs(f, 2)
		if err == nil {
			t.Fatalf("seed %d: %d bit flips went undetected", seed, fp.Stats().BitFlips)
		}
		if !IsCorrupt(err) {
			t.Fatalf("seed %d: want CorruptError, got %v", seed, err)
		}
	}
}

// TestCorruptErrorCarriesFile: the error names the file so joinerr can
// attribute it.
func TestCorruptErrorCarriesFile(t *testing.T) {
	d := diskio.NewDisk(256, 5, time.Millisecond)
	fp := diskio.NewFaultPolicy(diskio.FaultConfig{Seed: 2, BitFlipRate: 1.0})
	d.SetFaultPolicy(fp)
	f := d.Create("partition-7")
	writeKPEs(t, f, 300)
	fp.Disable()
	_, err := ReadAllKPEs(f, 2)
	if err == nil {
		t.Fatal("corruption undetected")
	}
	ce, ok := err.(*CorruptError)
	if !ok {
		t.Fatalf("want *CorruptError, got %T", err)
	}
	if ce.FileName() != "partition-7" {
		t.Fatalf("FileName = %q", ce.FileName())
	}
}

// TestWriteAfterFlushRejected pins the writer's lifecycle contract.
func TestWriteAfterFlushRejected(t *testing.T) {
	d := diskio.NewDisk(256, 5, time.Millisecond)
	f := d.Create("k")
	w := NewKPEWriter(f, 2)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(geom.KPE{}); err == nil {
		t.Fatal("write after Flush must error")
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush must be idempotent: %v", err)
	}
}

// TestFlushedEmptyStreamReadsCleanly: a finalized empty stream is an
// end-of-stream frame only, and both it and a never-written file read as
// zero records without error.
func TestFlushedEmptyStreamReadsCleanly(t *testing.T) {
	d := diskio.NewDisk(256, 5, time.Millisecond)
	flushed := d.Create("flushed")
	w := NewKPEWriter(flushed, 2)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, f := range []*diskio.File{flushed, d.Create("never-written")} {
		if n := NumKPEs(f); n != 0 {
			t.Fatalf("%s: NumKPEs = %d", f.Name(), n)
		}
		got, err := ReadAllKPEs(f, 2)
		if err != nil || len(got) != 0 {
			t.Fatalf("%s: read = (%d records, %v)", f.Name(), len(got), err)
		}
	}
}

// tornPrefix copies the first n bytes of src into a fresh file,
// simulating a write torn after exactly n bytes.
func tornPrefix(t *testing.T, d *diskio.Disk, src *diskio.File, n int) *diskio.File {
	t.Helper()
	f := d.Create(src.Name() + "-torn")
	w := f.NewWriter(4)
	if _, err := w.Write(src.Bytes()[:n]); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return f
}

// TestVerifyEmptyCatchesSubHeaderTear: a stream torn below one frame
// header (or inside the first payload) reports zero records, so callers
// would skip it as empty — VerifyEmpty must expose the tear as a
// CorruptError instead of letting the records vanish silently.
func TestVerifyEmptyCatchesSubHeaderTear(t *testing.T) {
	d := diskio.NewDisk(256, 5, time.Millisecond)
	whole := d.Create("whole")
	writeKPEs(t, whole, 1)

	// Tears below the header and tears inside the first record's payload
	// both leave a length-derived count of zero.
	for _, n := range []int{1, frameHeaderSize - 1, frameHeaderSize, frameHeaderSize + 1} {
		torn := tornPrefix(t, d, whole, n)
		if c := NumKPEs(torn); c != 0 {
			t.Fatalf("tear to %d bytes: NumKPEs = %d, want 0 (precondition)", n, c)
		}
		err := VerifyEmptyKPEs(torn, 2)
		if err == nil {
			t.Fatalf("tear to %d bytes passed empty-stream verification", n)
		}
		if !IsCorrupt(err) {
			t.Fatalf("tear to %d bytes: want CorruptError, got %v", n, err)
		}
	}

	// Intact streams pass: finalized empty, never written, and non-empty
	// (vacuously, without I/O).
	empty := d.Create("empty")
	if err := NewKPEWriter(empty, 2).Flush(); err != nil {
		t.Fatal(err)
	}
	for _, f := range []*diskio.File{empty, d.Create("never-written"), whole} {
		if err := VerifyEmptyKPEs(f, 2); err != nil {
			t.Fatalf("%s: intact stream failed verification: %v", f.Name(), err)
		}
	}
}

// TestRangeReaderTornAtFrameBoundary: a file torn at exactly a frame
// boundary must not read as a clean short range — the merge phase of the
// external sort would otherwise write a checksum-valid but incomplete
// run and drop records without any error.
func TestRangeReaderTornAtFrameBoundary(t *testing.T) {
	d := diskio.NewDisk(256, 5, time.Millisecond)
	const rec, n = 8, 600
	if n <= recsPerFrame(rec) {
		t.Fatalf("need at least two frames; %d records fit in one", n)
	}
	whole := d.Create("whole")
	w := NewRecWriter(whole, rec, 2)
	buf := make([]byte, rec)
	for i := 0; i < n; i++ {
		buf[0] = byte(i)
		if err := w.Write(buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	torn := tornPrefix(t, d, whole, frameBytes(rec))

	r := NewRecRangeReader(torn, rec, 2, 0, n)
	served := 0
	var err error
	for {
		var ok bool
		ok, err = r.Next(buf)
		if !ok || err != nil {
			break
		}
		served++
	}
	if err == nil {
		t.Fatalf("range over torn file ended cleanly after %d of %d records", served, n)
	}
	if !IsCorrupt(err) {
		t.Fatalf("want CorruptError, got %v", err)
	}
}

// FuzzFrameReader feeds arbitrary bytes to the frame reader: whatever
// the input, Next must terminate with records or an error — never panic
// and never loop forever.
func FuzzFrameReader(f *testing.F) {
	// Seed with a valid two-frame stream, a truncation of it, and junk.
	d := diskio.NewDisk(256, 5, time.Millisecond)
	valid := d.Create("v")
	w := NewRecWriter(valid, 8, 2)
	for i := 0; i < 600; i++ {
		w.Write([]byte{byte(i), 0, 0, 0, 0, 0, 0, 0})
	}
	w.Flush()
	f.Add(append([]byte(nil), valid.Bytes()...))
	f.Add(append([]byte(nil), valid.Bytes()[:len(valid.Bytes())/2]...))
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0, 1, 2, 3, 4, 5})

	f.Fuzz(func(t *testing.T, data []byte) {
		d := diskio.NewDisk(256, 5, time.Millisecond)
		file := d.Create("fz")
		fw := file.NewWriter(4)
		fw.Write(data)
		fw.Flush()
		r := NewRecReader(file, 8, 2)
		buf := make([]byte, 8)
		// A reader can yield at most one record per payload slot; anything
		// beyond that bounds a runaway loop.
		limit := len(data)/8 + 2
		for n := 0; ; n++ {
			ok, err := r.Next(buf)
			if err != nil || !ok {
				return
			}
			if n > limit {
				t.Fatalf("reader yielded more records than the file can hold (%d)", n)
			}
		}
	})
}
