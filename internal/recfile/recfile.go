// Package recfile layers fixed-size record streams (KPEs, result Pairs,
// and the generic records of the external sort) on top of the simulated
// disk of package diskio. Partition files, level files, sort runs and
// the temporary result files of the original PBSM duplicate-removal
// phase are all recfile streams.
//
// # Framed page format
//
// Records are not written raw: they are grouped into *frames* of a fixed
// record capacity, each protected by a CRC-32C checksum, so that any
// corruption the storage layer lets through (torn writes, bit flips)
// is detected at read time instead of silently producing a wrong join
// result. A frame is
//
//	+--------------+--------------+-----------+------------------+
//	| count uint32 | index uint32 | crc uint32| count × recSize  |
//	| (bit 31 =    | (position of | CRC-32C of| record payload   |
//	|  end-of-     |  frame in    | header[0:8]                  |
//	|  stream)     |  stream)     |  + payload|                  |
//	+--------------+--------------+-----------+------------------+
//
// All integers are little-endian. Every frame except the final one holds
// exactly recsPerFrame(recSize) records, so a record index maps to a
// byte offset arithmetically and range readers can start mid-file. Flush
// finalizes a stream by emitting a final frame (possibly empty) with the
// end-of-stream bit set; a reader that hits end of file without having
// seen that bit reports corruption — this is what catches a torn write
// that happens to tear at a frame boundary. The frame index, covered by
// the checksum, catches frame-aligned tears mid-file.
//
// # Fault handling
//
// Transient faults injected by the diskio layer are retried here, up to
// MaxRetries times per request; because diskio leaves writer buffers and
// reader positions untouched on a transient fault, a retry re-issues the
// identical request. Retries are counted on the Disk's Stats so they
// surface in per-join results. Corruption (checksum mismatch, torn or
// misordered frames) is *not* retried: readers return a CorruptError and
// the layers above decide whether to heal (PBSM re-derives partition
// files) or fail cleanly.
package recfile

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"spatialjoin/internal/diskio"
	"spatialjoin/internal/geom"
)

const (
	// frameHeaderSize is the per-frame overhead in bytes.
	frameHeaderSize = 12
	// targetFrameSize bounds the physical frame size in bytes.
	targetFrameSize = 4096
	// lastFlag marks the final frame of a stream in the count word.
	lastFlag = 1 << 31
	// MaxRetries bounds the deterministic retry loop for transient
	// faults. It must exceed the fault policy's burst cap so that a
	// retried request always eventually succeeds.
	MaxRetries = 4
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// recsPerFrame returns the record capacity of a frame for recSize-byte
// records (at least 1).
func recsPerFrame(recSize int) int {
	n := (targetFrameSize - frameHeaderSize) / recSize
	if n < 1 {
		n = 1
	}
	return n
}

// frameBytes returns the physical size of a full frame.
func frameBytes(recSize int) int {
	return frameHeaderSize + recsPerFrame(recSize)*recSize
}

// NumRecs returns the number of recSize-byte records stored in f,
// derived from the file length and the frame arithmetic. It charges no
// I/O; if the file is corrupt the count is a best-effort estimate and
// the corruption surfaces when the records are read.
func NumRecs(f *diskio.File, recSize int) int64 {
	fb, per := int64(frameBytes(recSize)), int64(recsPerFrame(recSize))
	l := int64(f.Len())
	n := (l / fb) * per
	if rem := l % fb; rem >= frameHeaderSize {
		n += (rem - frameHeaderSize) / int64(recSize)
	}
	return n
}

// VerifyEmpty checks that a file whose length-derived record count is
// zero really is an intact empty stream: either never written (zero
// length) or exactly one finalized end-of-stream frame. A torn write can
// truncate a stream below one frame header, which makes NumRecs report
// zero for a file that held records — so callers that skip apparently
// empty files MUST verify before skipping, or corruption silently drops
// the file's records instead of surfacing as a CorruptError. Files with
// a non-zero record count are vacuously fine here (their corruption, if
// any, surfaces when they are read) and cost no I/O.
func VerifyEmpty(f *diskio.File, recSize, bufPages int) error {
	if f.Len() == 0 || NumRecs(f, recSize) > 0 {
		return nil
	}
	r := NewRecReader(f, recSize, bufPages)
	buf := make([]byte, recSize)
	ok, err := r.Next(buf)
	if err != nil {
		return err
	}
	if ok {
		return &CorruptError{File: f.Name(), Detail: "records present in a stream whose length reports none"}
	}
	return nil
}

// VerifyEmptyKPEs is VerifyEmpty for KPE streams.
func VerifyEmptyKPEs(f *diskio.File, bufPages int) error {
	return VerifyEmpty(f, geom.KPESize, bufPages)
}

// CorruptError reports that a stream failed integrity verification:
// checksum mismatch, torn frame, or misordered frames.
type CorruptError struct {
	File   string
	Frame  int64 // frame index at which corruption was detected
	Detail string
}

// Error implements error.
func (e *CorruptError) Error() string {
	return fmt.Sprintf("recfile: %s frame %d: %s", e.File, e.Frame, e.Detail)
}

// FileName reports the corrupt file (used by joinerr.Wrap).
func (e *CorruptError) FileName() string { return e.File }

// IsCorrupt reports whether err is (or wraps) a CorruptError.
func IsCorrupt(err error) bool {
	var ce *CorruptError
	return errors.As(err, &ce)
}

// RecWriter appends fixed-size records to a disk file in checksummed
// frames. Flush finalizes the stream; writing after Flush is an error.
type RecWriter struct {
	f        *diskio.File
	w        *diskio.Writer
	rec      int
	perFrame int
	frame    []byte
	n        int    // records in the current frame
	idx      uint32 // index of the next frame to emit
	count    int64  // records written in total
	finished bool
}

// NewRecWriter creates a framed writer over f for recSize-byte records
// with a buffer of bufPages pages.
func NewRecWriter(f *diskio.File, recSize, bufPages int) *RecWriter {
	return &RecWriter{
		f:        f,
		w:        f.NewWriter(bufPages),
		rec:      recSize,
		perFrame: recsPerFrame(recSize),
		frame:    make([]byte, frameBytes(recSize)),
	}
}

// Write appends one record, which must be exactly the configured size.
func (w *RecWriter) Write(rec []byte) error {
	buf, err := w.Grab()
	if err != nil {
		return err
	}
	copy(buf, rec)
	return w.Commit()
}

// Grab returns the frame slot for the next record, for callers that
// encode in place instead of through an intermediate buffer. The slot is
// only valid until Commit; every Grab must be paired with one Commit.
func (w *RecWriter) Grab() ([]byte, error) {
	if w.finished {
		return nil, fmt.Errorf("recfile: write to finalized stream %s", w.f.Name())
	}
	off := frameHeaderSize + w.n*w.rec
	return w.frame[off : off+w.rec : off+w.rec], nil
}

// Commit seals the record most recently grabbed with Grab.
func (w *RecWriter) Commit() error {
	w.n++
	w.count++
	if w.n == w.perFrame {
		return w.emit(false)
	}
	return nil
}

// Count returns the number of records written so far.
func (w *RecWriter) Count() int64 { return w.count }

// emit seals the current frame (checksum, index, flags) and writes it
// through the buffered writer with bounded retry on transient faults.
func (w *RecWriter) emit(last bool) error {
	if w.n == 0 && !last {
		return nil
	}
	count := uint32(w.n)
	if last {
		count |= lastFlag
	}
	binary.LittleEndian.PutUint32(w.frame[0:], count)
	binary.LittleEndian.PutUint32(w.frame[4:], w.idx)
	crc := crc32.Update(0, crcTable, w.frame[0:8])
	crc = crc32.Update(crc, crcTable, w.frame[frameHeaderSize:frameHeaderSize+w.n*w.rec])
	binary.LittleEndian.PutUint32(w.frame[8:], crc)

	p := w.frame[:frameHeaderSize+w.n*w.rec]
	for retries := 0; ; {
		n, err := w.w.Write(p)
		p = p[n:]
		if err == nil {
			break
		}
		if n > 0 {
			// Progress means a *different* device request is now failing;
			// the retry budget is per request. Only consecutive
			// zero-progress failures repeat one request, and the policy's
			// burst cap bounds those below MaxRetries.
			retries = 0
		}
		if !diskio.IsTransient(err) || retries >= MaxRetries {
			return err
		}
		retries++
		w.f.Disk().NoteRetry(w.f.Name())
		if err := w.f.Disk().RetrySleep(w.f.Name(), retries); err != nil {
			return err
		}
	}
	w.idx++
	w.n = 0
	return nil
}

// Flush finalizes the stream — emits the final frame with the
// end-of-stream bit (possibly empty) — and forces all buffered bytes to
// disk. It is idempotent.
func (w *RecWriter) Flush() error {
	if w.finished {
		return nil
	}
	if err := w.emit(true); err != nil {
		return err
	}
	w.finished = true
	for retries := 0; ; {
		err := w.w.Flush()
		if err == nil {
			return nil
		}
		if !diskio.IsTransient(err) || retries >= MaxRetries {
			return err
		}
		retries++
		w.f.Disk().NoteRetry(w.f.Name())
		if err := w.f.Disk().RetrySleep(w.f.Name(), retries); err != nil {
			return err
		}
	}
}

// RecReader scans fixed-size records from a framed disk file, verifying
// every frame's checksum and sequencing. The zero value is not usable.
type RecReader struct {
	f         *diskio.File
	r         *diskio.Reader
	rec       int
	perFrame  int
	payload   []byte
	n, pos    int    // records in / consumed from the current frame
	idx       uint32 // next expected frame index
	sawLast   bool
	rangeMode bool
	remaining int64 // records left to serve in range mode
	skip      int   // records to skip in the first loaded frame
	served    int64
	hdr       [frameHeaderSize]byte
}

// NewRecReader creates a reader over the whole of f.
func NewRecReader(f *diskio.File, recSize, bufPages int) *RecReader {
	return &RecReader{
		f:        f,
		r:        f.NewReader(bufPages),
		rec:      recSize,
		perFrame: recsPerFrame(recSize),
		payload:  make([]byte, recsPerFrame(recSize)*recSize),
	}
}

// NewRecRangeReader creates a reader over records [lo, hi) of f. The
// range addresses records by index; the reader seeks to the containing
// frame and verifies checksums from there.
func NewRecRangeReader(f *diskio.File, recSize, bufPages int, lo, hi int64) *RecReader {
	per := int64(recsPerFrame(recSize))
	startFrame := lo / per
	return &RecReader{
		f:         f,
		r:         f.NewRangeReader(bufPages, startFrame*int64(frameBytes(recSize)), int64(f.Len())),
		rec:       recSize,
		perFrame:  int(per),
		payload:   make([]byte, int(per)*recSize),
		idx:       uint32(startFrame),
		rangeMode: true,
		remaining: hi - lo,
		skip:      int(lo % per),
	}
}

// corrupt builds a CorruptError at the reader's current frame.
func (r *RecReader) corrupt(detail string) error {
	return &CorruptError{File: r.f.Name(), Frame: int64(r.idx), Detail: detail}
}

// readRetry reads into p with bounded retry on transient faults. It
// returns the bytes read; fewer than len(p) means the range ended.
func (r *RecReader) readRetry(p []byte) (int, error) {
	got := 0
	for retries := 0; ; {
		n, err := r.r.Read(p[got:])
		got += n
		if err == nil {
			return got, nil
		}
		if n > 0 {
			retries = 0 // progress: the failing request is a new one
		}
		if !diskio.IsTransient(err) || retries >= MaxRetries {
			return got, err
		}
		retries++
		r.f.Disk().NoteRetry(r.f.Name())
		if err := r.f.Disk().RetrySleep(r.f.Name(), retries); err != nil {
			return got, err
		}
	}
}

// loadFrame reads and verifies the next frame. ok is false at a clean
// end of stream.
func (r *RecReader) loadFrame() (bool, error) {
	if r.sawLast || (r.rangeMode && r.remaining == 0) {
		return false, nil
	}
	n, err := r.readRetry(r.hdr[:])
	if err != nil {
		return false, err
	}
	if n == 0 {
		if r.rangeMode {
			// loadFrame is never entered with remaining == 0, and range
			// callers only request records that were written — running
			// out of file mid-range is a torn tail, not a clean end. A
			// clean return here would silently shorten a sort run into a
			// checksum-valid but incomplete merge output.
			return false, r.corrupt("stream ends before requested record range")
		}
		if r.idx == 0 && r.f.Len() == 0 {
			return false, nil // never-written file: empty stream
		}
		return false, r.corrupt("stream ends without end-of-stream frame (torn tail)")
	}
	if n < frameHeaderSize {
		return false, r.corrupt("torn frame header")
	}
	countWord := binary.LittleEndian.Uint32(r.hdr[0:])
	frameIdx := binary.LittleEndian.Uint32(r.hdr[4:])
	wantCRC := binary.LittleEndian.Uint32(r.hdr[8:])
	last := countWord&lastFlag != 0
	count := int(countWord &^ lastFlag)
	switch {
	case count > r.perFrame:
		return false, r.corrupt(fmt.Sprintf("frame record count %d exceeds capacity %d", count, r.perFrame))
	case count == 0 && !last:
		return false, r.corrupt("empty non-final frame")
	case frameIdx != r.idx:
		return false, r.corrupt(fmt.Sprintf("frame index %d, expected %d (misordered or torn stream)", frameIdx, r.idx))
	}
	p := r.payload[:count*r.rec]
	n, err = r.readRetry(p)
	if err != nil {
		return false, err
	}
	if n < len(p) {
		return false, r.corrupt("torn frame payload")
	}
	crc := crc32.Update(0, crcTable, r.hdr[0:8])
	crc = crc32.Update(crc, crcTable, p)
	if crc != wantCRC {
		return false, r.corrupt("checksum mismatch")
	}
	if r.skip > count {
		return false, r.corrupt("record range starts past frame content")
	}
	r.n, r.pos = count, r.skip
	r.skip = 0
	r.idx++
	r.sawLast = last
	if r.pos == r.n && !last {
		// Fully-skipped frame (range starts in a later frame region —
		// cannot happen with frame-aligned seeks, but stay safe).
		return r.loadFrame()
	}
	return r.pos < r.n || !r.rangeMode, nil
}

// Next copies the next record into dst; ok is false at the end of the
// stream or range. After a non-nil error the reader is exhausted.
func (r *RecReader) Next(dst []byte) (bool, error) {
	p, ok, err := r.NextRef()
	if !ok || err != nil {
		return false, err
	}
	copy(dst, p)
	return true, nil
}

// NextRef returns a view of the next record, valid only until the
// following Next/NextRef call; ok is false at the end of the stream or
// range. After a non-nil error the reader is exhausted.
func (r *RecReader) NextRef() ([]byte, bool, error) {
	if r.rangeMode && r.remaining == 0 {
		return nil, false, nil
	}
	for r.pos >= r.n {
		ok, err := r.loadFrame()
		if err != nil || !ok {
			return nil, false, err
		}
		if r.pos >= r.n { // empty final frame
			return nil, false, nil
		}
	}
	p := r.payload[r.pos*r.rec : (r.pos+1)*r.rec : (r.pos+1)*r.rec]
	r.pos++
	r.served++
	if r.rangeMode {
		r.remaining--
	}
	return p, true, nil
}

// Left returns the number of unread records: exact for range readers,
// length-derived for whole-file readers.
func (r *RecReader) Left() int64 {
	if r.rangeMode {
		return r.remaining
	}
	return NumRecs(r.f, r.rec) - r.served
}

// KPEWriter appends KPE records to a disk file through checksummed
// frames.
type KPEWriter struct {
	w *RecWriter
}

// NewKPEWriter creates a writer over f with a buffer of bufPages pages.
func NewKPEWriter(f *diskio.File, bufPages int) *KPEWriter {
	return &KPEWriter{w: NewRecWriter(f, geom.KPESize, bufPages)}
}

// Write appends one KPE, encoding directly into the frame.
func (w *KPEWriter) Write(k geom.KPE) error {
	buf, err := w.w.Grab()
	if err != nil {
		return err
	}
	geom.EncodeKPE(buf, k)
	return w.w.Commit()
}

// Count returns the number of records written so far.
func (w *KPEWriter) Count() int { return int(w.w.Count()) }

// Flush finalizes the stream and forces buffered records to disk.
func (w *KPEWriter) Flush() error { return w.w.Flush() }

// KPEReader scans KPE records sequentially from a disk file.
type KPEReader struct {
	r *RecReader
}

// NewKPEReader creates a reader over the whole of f with a buffer of
// bufPages pages.
func NewKPEReader(f *diskio.File, bufPages int) *KPEReader {
	return &KPEReader{r: NewRecReader(f, geom.KPESize, bufPages)}
}

// NewKPERangeReader creates a reader over records [lo, hi) of f.
func NewKPERangeReader(f *diskio.File, bufPages int, lo, hi int64) *KPEReader {
	return &KPEReader{r: NewRecRangeReader(f, geom.KPESize, bufPages, lo, hi)}
}

// Next returns the next record; ok is false at end of stream or on
// error.
func (r *KPEReader) Next() (geom.KPE, bool, error) {
	p, ok, err := r.r.NextRef()
	if !ok || err != nil {
		return geom.KPE{}, false, err
	}
	return geom.DecodeKPE(p), true, nil
}

// RecordsLeft returns the number of unread records.
func (r *KPEReader) RecordsLeft() int64 { return r.r.Left() }

// NumKPEs returns the number of KPE records stored in f.
func NumKPEs(f *diskio.File) int64 { return NumRecs(f, geom.KPESize) }

// ReadAllKPEs loads every record of f into memory with one buffered
// scan. The caller is responsible for charging the load against its
// memory budget; the I/O itself is charged to the disk as usual.
func ReadAllKPEs(f *diskio.File, bufPages int) ([]geom.KPE, error) {
	out := make([]geom.KPE, 0, NumKPEs(f))
	r := NewKPEReader(f, bufPages)
	for {
		k, ok, err := r.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, k)
	}
}

// PairWriter appends result Pair records to a disk file.
type PairWriter struct {
	w *RecWriter
}

// NewPairWriter creates a writer over f with a buffer of bufPages pages.
func NewPairWriter(f *diskio.File, bufPages int) *PairWriter {
	return &PairWriter{w: NewRecWriter(f, geom.PairSize, bufPages)}
}

// Write appends one pair, encoding directly into the frame.
func (w *PairWriter) Write(p geom.Pair) error {
	buf, err := w.w.Grab()
	if err != nil {
		return err
	}
	geom.EncodePair(buf, p)
	return w.w.Commit()
}

// Count returns the number of records written so far.
func (w *PairWriter) Count() int { return int(w.w.Count()) }

// Flush finalizes the stream and forces buffered records to disk.
func (w *PairWriter) Flush() error { return w.w.Flush() }

// PairReader scans Pair records sequentially from a disk file.
type PairReader struct {
	r *RecReader
}

// NewPairReader creates a reader over the whole of f.
func NewPairReader(f *diskio.File, bufPages int) *PairReader {
	return &PairReader{r: NewRecReader(f, geom.PairSize, bufPages)}
}

// Next returns the next pair; ok is false at end of stream or on error.
func (r *PairReader) Next() (geom.Pair, bool, error) {
	p, ok, err := r.r.NextRef()
	if !ok || err != nil {
		return geom.Pair{}, false, err
	}
	return geom.DecodePair(p), true, nil
}
