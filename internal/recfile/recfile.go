// Package recfile layers fixed-size record streams (KPEs and result
// Pairs) on top of the simulated disk of package diskio. Partition files,
// level files, and the temporary result files of the original PBSM
// duplicate-removal phase are all recfile streams.
package recfile

import (
	"spatialjoin/internal/diskio"
	"spatialjoin/internal/geom"
)

// KPEWriter appends KPE records to a disk file through a page buffer.
type KPEWriter struct {
	w   *diskio.Writer
	buf [geom.KPESize]byte
	n   int
}

// NewKPEWriter creates a writer over f with a buffer of bufPages pages.
func NewKPEWriter(f *diskio.File, bufPages int) *KPEWriter {
	return &KPEWriter{w: f.NewWriter(bufPages)}
}

// Write appends one KPE.
func (w *KPEWriter) Write(k geom.KPE) {
	geom.EncodeKPE(w.buf[:], k)
	w.w.Write(w.buf[:])
	w.n++
}

// Count returns the number of records written so far.
func (w *KPEWriter) Count() int { return w.n }

// Flush forces buffered records to disk.
func (w *KPEWriter) Flush() { w.w.Flush() }

// KPEReader scans KPE records sequentially from a disk file.
type KPEReader struct {
	r   *diskio.Reader
	buf [geom.KPESize]byte
}

// NewKPEReader creates a reader over the whole of f with a buffer of
// bufPages pages.
func NewKPEReader(f *diskio.File, bufPages int) *KPEReader {
	return &KPEReader{r: f.NewReader(bufPages)}
}

// NewKPERangeReader creates a reader over records [lo, hi) of f.
func NewKPERangeReader(f *diskio.File, bufPages int, lo, hi int64) *KPEReader {
	return &KPEReader{r: f.NewRangeReader(bufPages, lo*geom.KPESize, hi*geom.KPESize)}
}

// Next returns the next record, or false at end of stream.
func (r *KPEReader) Next() (geom.KPE, bool) {
	if !r.r.ReadFull(r.buf[:]) {
		return geom.KPE{}, false
	}
	return geom.DecodeKPE(r.buf[:]), true
}

// RecordsLeft returns the number of unread records.
func (r *KPEReader) RecordsLeft() int64 { return r.r.Remaining() / geom.KPESize }

// NumKPEs returns the number of KPE records stored in f.
func NumKPEs(f *diskio.File) int64 { return int64(f.Len()) / geom.KPESize }

// ReadAllKPEs loads every record of f into memory with one buffered scan.
// The caller is responsible for charging the load against its memory
// budget; the I/O itself is charged to the disk as usual.
func ReadAllKPEs(f *diskio.File, bufPages int) []geom.KPE {
	out := make([]geom.KPE, 0, NumKPEs(f))
	r := NewKPEReader(f, bufPages)
	for {
		k, ok := r.Next()
		if !ok {
			return out
		}
		out = append(out, k)
	}
}

// PairWriter appends result Pair records to a disk file.
type PairWriter struct {
	w   *diskio.Writer
	buf [geom.PairSize]byte
	n   int
}

// NewPairWriter creates a writer over f with a buffer of bufPages pages.
func NewPairWriter(f *diskio.File, bufPages int) *PairWriter {
	return &PairWriter{w: f.NewWriter(bufPages)}
}

// Write appends one pair.
func (w *PairWriter) Write(p geom.Pair) {
	geom.EncodePair(w.buf[:], p)
	w.w.Write(w.buf[:])
	w.n++
}

// Count returns the number of records written so far.
func (w *PairWriter) Count() int { return w.n }

// Flush forces buffered records to disk.
func (w *PairWriter) Flush() { w.w.Flush() }

// PairReader scans Pair records sequentially from a disk file.
type PairReader struct {
	r   *diskio.Reader
	buf [geom.PairSize]byte
}

// NewPairReader creates a reader over the whole of f.
func NewPairReader(f *diskio.File, bufPages int) *PairReader {
	return &PairReader{r: f.NewReader(bufPages)}
}

// Next returns the next pair, or false at end of stream.
func (r *PairReader) Next() (geom.Pair, bool) {
	if !r.r.ReadFull(r.buf[:]) {
		return geom.Pair{}, false
	}
	return geom.DecodePair(r.buf[:]), true
}
