package sweep

import "spatialjoin/internal/geom"

// ListSweep is the Plane Sweep Intersection-Test of [BKS 93]: both inputs
// are sorted by the left edge, a vertical sweep line moves left to right,
// and the status of the sweep line — the rectangles currently stabbed by
// it — is kept in a plain list per relation. When a rectangle enters the
// sweep, expired rectangles (right edge left of the sweep) are dropped
// from the other relation's list and the remaining ones are tested for
// y-overlap.
//
// Its runtime on a partition with n rectangles is O(√n·n) under the
// uniform stabbing assumption of §3.2.2, which is why PBSM benefits from
// many small partitions — and why the algorithm degrades when a larger
// memory budget produces fewer, larger partitions (Figure 5).
type ListSweep struct {
	tests   int64
	touches int64
}

// Name implements Algorithm.
func (a *ListSweep) Name() string { return string(ListKind) }

// Tests implements Algorithm.
func (a *ListSweep) Tests() int64 { return a.tests }

// Touches implements Algorithm: status entries scanned during probes,
// expired ones included — the list must look at every resident entry on
// every probe, which is exactly its weakness on large partitions.
func (a *ListSweep) Touches() int64 { return a.touches }

// ResetTests implements Algorithm.
func (a *ListSweep) ResetTests() { a.tests, a.touches = 0, 0 }

// Join implements Algorithm.
func (a *ListSweep) Join(rs, ss []geom.KPE, emit Emit) {
	sortByXL(rs)
	sortByXL(ss)
	var activeR, activeS []geom.KPE
	i, j := 0, 0
	for i < len(rs) || j < len(ss) {
		fromR := j >= len(ss) || (i < len(rs) && rs[i].Rect.XL <= ss[j].Rect.XL)
		if fromR {
			r := rs[i]
			i++
			activeS = a.expireAndProbe(activeS, r, emit, false)
			activeR = append(activeR, r)
		} else {
			s := ss[j]
			j++
			activeR = a.expireAndProbe(activeR, s, emit, true)
			activeS = append(activeS, s)
		}
	}
}

// expireAndProbe removes from active every rectangle whose right edge
// lies strictly left of probe's left edge (it can no longer intersect
// anything arriving later), tests the survivors against probe for
// y-overlap, and returns the compacted list. probeIsS tells which side
// probe belongs to so the emit arguments keep (R, S) order.
func (a *ListSweep) expireAndProbe(active []geom.KPE, probe geom.KPE, emit Emit, probeIsS bool) []geom.KPE {
	a.touches += int64(len(active))
	x := probe.Rect.XL
	w := 0
	for i := range active {
		if active[i].Rect.XH < x {
			continue // expired: drop by not copying forward
		}
		active[w] = active[i]
		w++
		a.tests++
		if active[i].Rect.IntersectsY(probe.Rect) {
			if probeIsS {
				emit(active[i], probe)
			} else {
				emit(probe, active[i])
			}
		}
	}
	return active[:w]
}
