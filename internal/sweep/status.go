package sweep

import "spatialjoin/internal/geom"

// Status is a sweep-line status structure usable in streaming sweeps
// (package sssj): rectangles enter in ascending order of their left
// edges, and each probe lazily expires the rectangles the sweep line has
// passed. The in-memory algorithms of this package are built from the
// same structures.
type Status interface {
	// Insert adds a rectangle to the status.
	Insert(k geom.KPE)
	// Probe expires every stored rectangle whose right edge lies strictly
	// left of probe's left edge, then reports each remaining rectangle
	// whose y-range overlaps probe's.
	Probe(probe geom.KPE, report func(geom.KPE))
	// Len returns the number of resident rectangles (expired entries not
	// yet removed by a probe still count — they still occupy memory).
	Len() int
}

// NewStatus creates a sweep status of the given kind. ymin/ymax bound the
// y-keys for the trie variant (pass 0 and 1 for the unit data space);
// tests receives one increment per candidate test and touches one
// increment per status node touched (see Algorithm.Touches). The
// nested-loops kind has no status structure and maps to the list.
func NewStatus(kind Kind, ymin, ymax float64, tests, touches *int64) Status {
	if kind == TrieKind {
		if ymax <= ymin {
			// Degenerate y-extent: every key would scale to 0 (see
			// newTrieStatus), collapsing the whole trie onto the root
			// spine — an O(n) scan per probe with trie-node overhead on
			// top, strictly worse than the plain list. Fall back to the
			// list status, which handles identical keys at the same
			// asymptotic cost without the indirection.
			return &listStatus{tests: tests, touches: touches}
		}
		return newTrieStatus(ymin, ymax, 0, tests, touches)
	}
	return &listStatus{tests: tests, touches: touches}
}

// listStatus keeps the resident rectangles in a plain slice, the
// organization of the Plane Sweep Intersection-Test [BKS 93].
type listStatus struct {
	items   []geom.KPE
	tests   *int64
	touches *int64
}

// Insert implements Status.
func (l *listStatus) Insert(k geom.KPE) { l.items = append(l.items, k) }

// Len implements Status.
func (l *listStatus) Len() int { return len(l.items) }

// Probe implements Status.
func (l *listStatus) Probe(probe geom.KPE, report func(geom.KPE)) {
	*l.touches += int64(len(l.items))
	x := probe.Rect.XL
	w := 0
	for i := range l.items {
		if l.items[i].Rect.XH < x {
			continue // expired
		}
		l.items[w] = l.items[i]
		w++
		*l.tests++
		if l.items[i].Rect.IntersectsY(probe.Rect) {
			report(l.items[i])
		}
	}
	l.items = l.items[:w]
}

// trieStatus adapts intervalTrie to the Status interface.
type trieStatus struct {
	trie  *intervalTrie
	count int
}

// newTrieStatus builds a trie status over y-extent [ymin, ymax]; depth 0
// selects DefaultTrieDepth.
//
// The trie's performance depends on the scale function spreading y-keys
// over the [0, 2^depth) key space. When ymax <= ymin the inverse scale
// stays 0 and EVERY key maps to bucket 0: all intervals land on the
// root spine, probes degenerate to a linear scan of all residents, and
// the sweep as a whole degrades to O(n²) with a higher constant than
// the list status. Callers must guard the extent (NewStatus falls back
// to listStatus); this constructor keeps the degenerate arithmetic
// well-defined (scale clamps to 0) rather than dividing by zero.
func newTrieStatus(ymin, ymax float64, depth int, tests, touches *int64) *trieStatus {
	if depth <= 0 {
		depth = DefaultTrieDepth
	}
	inv := 0.0
	if ymax > ymin {
		inv = float64(uint32(1)<<uint(depth)-1) / (ymax - ymin)
	}
	limit := float64(uint32(1)<<uint(depth) - 1)
	scale := func(y float64) uint32 {
		v := (y - ymin) * inv
		if v <= 0 {
			return 0
		}
		if v >= limit {
			return uint32(limit)
		}
		return uint32(v)
	}
	return &trieStatus{trie: &intervalTrie{bits: depth, scale: scale, tests: tests, touches: touches}}
}

// Insert implements Status.
func (t *trieStatus) Insert(k geom.KPE) {
	t.trie.insert(k)
	t.count++
}

// Len implements Status.
func (t *trieStatus) Len() int { return t.count }

// Probe implements Status.
func (t *trieStatus) Probe(probe geom.KPE, report func(geom.KPE)) {
	t.count -= t.trie.probe(probe, report)
}
