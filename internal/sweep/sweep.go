// Package sweep implements the internal (main-memory) spatial join
// algorithms of the paper: simple nested loops, the list-based Plane
// Sweep Intersection-Test of Brinkhoff, Kriegel & Seeger [BKS 93] used by
// the original PBSM, and the trie-based plane sweep of §3.2.2 whose
// sweep-line status is an interval trie.
//
// All algorithms compute the set of intersecting pairs (r, s), r ∈ R,
// s ∈ S, and report each pair exactly once through the emit callback.
// They are the pluggable building block of both PBSM's join phase and
// S³J's partition joins, and the direct subject of the paper's Figure 4,
// Figure 5 and Figure 12 experiments.
package sweep

import (
	"sort"

	"spatialjoin/internal/geom"
)

// Emit receives one intersecting result pair.
type Emit func(r, s geom.KPE)

// Algorithm is an in-memory spatial intersection join. Join may reorder
// the input slices (the plane sweeps sort by the rectangles' left edges)
// but never adds or removes elements.
type Algorithm interface {
	Name() string
	// Join reports every intersecting pair between rs and ss.
	Join(rs, ss []geom.KPE, emit Emit)
	// Tests returns the cumulative number of candidate tests performed
	// across all Join calls, a machine-independent CPU proxy.
	Tests() int64
	// Touches returns the cumulative number of status-structure node
	// touches across all Join calls: list entries scanned for the list
	// sweep, trie nodes visited for the trie sweep. Where Tests counts
	// only y-overlap comparisons, Touches exposes the traversal work the
	// status organization itself causes — the quantity behind the
	// trie-vs-list crossover of §3.2.2.
	Touches() int64
	// ResetTests zeroes the test and touch counters.
	ResetTests()
}

// Kind names an internal algorithm for configuration surfaces.
type Kind string

const (
	// NestedLoopsKind selects the quadratic nested-loops join.
	NestedLoopsKind Kind = "nested"
	// ListKind selects the list-based Plane Sweep Intersection-Test.
	ListKind Kind = "list"
	// TrieKind selects the interval-trie plane sweep.
	TrieKind Kind = "trie"
)

// New returns a fresh Algorithm of the given kind. Unknown kinds yield
// the list sweep, the original PBSM default.
func New(k Kind) Algorithm {
	switch k {
	case NestedLoopsKind:
		return &NestedLoops{}
	case TrieKind:
		return &TrieSweep{}
	default:
		return &ListSweep{}
	}
}

// NestedLoops tests every pair. It is only competitive for the very small
// partitions produced by S³J (§4.4.1, Figure 12).
type NestedLoops struct {
	tests int64
}

// Name implements Algorithm.
func (a *NestedLoops) Name() string { return string(NestedLoopsKind) }

// Tests implements Algorithm.
func (a *NestedLoops) Tests() int64 { return a.tests }

// Touches implements Algorithm. Nested loops has no status structure;
// every candidate test is exactly one touch.
func (a *NestedLoops) Touches() int64 { return a.tests }

// ResetTests implements Algorithm.
func (a *NestedLoops) ResetTests() { a.tests = 0 }

// Join implements Algorithm.
func (a *NestedLoops) Join(rs, ss []geom.KPE, emit Emit) {
	for i := range rs {
		r := rs[i].Rect
		for j := range ss {
			a.tests++
			if r.Intersects(ss[j].Rect) {
				emit(rs[i], ss[j])
			}
		}
	}
}

// sortByXL orders a slice of KPEs by the left edge of their rectangles,
// the sweep order of both plane-sweep algorithms.
func sortByXL(ks []geom.KPE) {
	sort.Slice(ks, func(i, j int) bool { return ks[i].Rect.XL < ks[j].Rect.XL })
}
