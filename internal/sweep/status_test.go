package sweep

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"spatialjoin/internal/datagen"
	"spatialjoin/internal/geom"
)

// statusSweep joins two slices through the streaming Status interface
// the way SSSJ does: merge by XL, probe the other side, insert into own.
func statusSweep(kind Kind, rs, ss []geom.KPE) []geom.Pair {
	rc := append([]geom.KPE(nil), rs...)
	sc := append([]geom.KPE(nil), ss...)
	sortByXL(rc)
	sortByXL(sc)
	var tests, touches int64
	stR := NewStatus(kind, 0, 1, &tests, &touches)
	stS := NewStatus(kind, 0, 1, &tests, &touches)
	var out []geom.Pair
	i, j := 0, 0
	for i < len(rc) || j < len(sc) {
		if j >= len(sc) || (i < len(rc) && rc[i].Rect.XL <= sc[j].Rect.XL) {
			r := rc[i]
			i++
			stS.Probe(r, func(s geom.KPE) { out = append(out, geom.Pair{R: r.ID, S: s.ID}) })
			stR.Insert(r)
		} else {
			s := sc[j]
			j++
			stR.Probe(s, func(r geom.KPE) { out = append(out, geom.Pair{R: r.ID, S: s.ID}) })
			stS.Insert(s)
		}
	}
	sortPairs(out)
	return out
}

func TestStatusSweepMatchesOracle(t *testing.T) {
	rs := datagen.Uniform(1, 500, 0.04)
	ss := datagen.Uniform(2, 500, 0.04)
	want := naive(rs, ss)
	for _, kind := range []Kind{ListKind, TrieKind, NestedLoopsKind} {
		got := statusSweep(kind, rs, ss)
		comparePairs(t, "status-"+string(kind), got, want)
	}
}

func TestStatusLenTracksResidency(t *testing.T) {
	var tests, touches int64
	for _, kind := range []Kind{ListKind, TrieKind} {
		st := NewStatus(kind, 0, 1, &tests, &touches)
		if st.Len() != 0 {
			t.Fatalf("%s: fresh status not empty", kind)
		}
		// Three rectangles expiring at different x.
		st.Insert(geom.KPE{ID: 1, Rect: geom.NewRect(0.0, 0.1, 0.2, 0.2)})
		st.Insert(geom.KPE{ID: 2, Rect: geom.NewRect(0.0, 0.4, 0.5, 0.5)})
		st.Insert(geom.KPE{ID: 3, Rect: geom.NewRect(0.0, 0.7, 0.9, 0.8)})
		if st.Len() != 3 {
			t.Fatalf("%s: Len = %d, want 3", kind, st.Len())
		}
		// A probe at x=0.6 must expire the first two (XH < 0.6) that it
		// visits; the trie only visits overlapping nodes, so Len is an
		// upper bound — but after a full-range probe it must be exact.
		st.Probe(geom.KPE{ID: 9, Rect: geom.NewRect(0.6, 0.0, 0.6, 1.0)}, func(geom.KPE) {})
		if st.Len() != 1 {
			t.Fatalf("%s: Len after full-range probe = %d, want 1", kind, st.Len())
		}
	}
}

func TestStatusProbeReportsOnlyOverlaps(t *testing.T) {
	var tests, touches int64
	for _, kind := range []Kind{ListKind, TrieKind} {
		st := NewStatus(kind, 0, 1, &tests, &touches)
		st.Insert(geom.KPE{ID: 1, Rect: geom.NewRect(0.0, 0.1, 1.0, 0.2)})
		st.Insert(geom.KPE{ID: 2, Rect: geom.NewRect(0.0, 0.8, 1.0, 0.9)})
		var hits []uint64
		st.Probe(geom.KPE{ID: 9, Rect: geom.NewRect(0.5, 0.15, 0.6, 0.5)}, func(k geom.KPE) {
			hits = append(hits, k.ID)
		})
		if len(hits) != 1 || hits[0] != 1 {
			t.Fatalf("%s: hits = %v, want [1]", kind, hits)
		}
	}
}

func TestStatusEquivalenceProperty(t *testing.T) {
	f := func(seed int64, nr, ns uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		rs := randomKPEs(rng, int(nr)%50+1)
		ss := randomKPEs(rng, int(ns)%50+1)
		want := naive(rs, ss)
		for _, kind := range []Kind{ListKind, TrieKind} {
			got := statusSweep(kind, rs, ss)
			if len(got) != len(want) {
				return false
			}
			for i := range got {
				if got[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestStatusNestedMapsToList(t *testing.T) {
	var tests, touches int64
	if _, ok := NewStatus(NestedLoopsKind, 0, 1, &tests, &touches).(*listStatus); !ok {
		t.Fatal("nested-loops kind must map to the list status")
	}
}

// Guard against regressions in pair ordering: statusSweep's output must
// be independent of which relation streams first on ties.
func TestStatusSweepTieBreaking(t *testing.T) {
	shared := geom.NewRect(0.5, 0.5, 0.6, 0.6)
	rs := []geom.KPE{{ID: 1, Rect: shared}}
	ss := []geom.KPE{{ID: 2, Rect: shared}}
	got := statusSweep(ListKind, rs, ss)
	if len(got) != 1 || got[0] != (geom.Pair{R: 1, S: 2}) {
		t.Fatalf("tie pair = %v", got)
	}
	sort.Slice(got, func(i, j int) bool { return got[i].Less(got[j]) })
}

// TestStatusTrieDegenerateExtentFallsBackToList: with ymax <= ymin the
// trie's key scale collapses every y to bucket 0, piling all intervals
// onto the root spine — a linear scan per probe with trie overhead on
// top. NewStatus must fall back to the list status and still produce
// the exact result set.
func TestStatusTrieDegenerateExtentFallsBackToList(t *testing.T) {
	for _, ext := range [][2]float64{{0.5, 0.5}, {0.7, 0.2}} {
		var tests, touches int64
		st := NewStatus(TrieKind, ext[0], ext[1], &tests, &touches)
		if _, ok := st.(*listStatus); !ok {
			t.Fatalf("extent [%g,%g]: got %T, want *listStatus fallback", ext[0], ext[1], st)
		}
	}

	// A healthy extent still selects the trie.
	var tests, touches int64
	if st := NewStatus(TrieKind, 0, 1, &tests, &touches); func() bool { _, ok := st.(*trieStatus); return !ok }() {
		t.Fatalf("extent [0,1]: got %T, want *trieStatus", st)
	}

	// Correctness on inputs whose rectangles all share one y-extent —
	// the workload that produces a degenerate joint extent upstream.
	rs := make([]geom.KPE, 40)
	ss := make([]geom.KPE, 40)
	for i := range rs {
		x := float64(i) / 50
		rs[i] = geom.KPE{ID: uint64(i), Rect: geom.NewRect(x, 0.5, x+0.1, 0.5)}
		ss[i] = geom.KPE{ID: uint64(100 + i), Rect: geom.NewRect(x+0.05, 0.5, x+0.12, 0.5)}
	}
	want := naive(rs, ss)
	got := statusSweepExtent(TrieKind, 0.5, 0.5, rs, ss)
	comparePairs(t, "degenerate-trie", got, want)
}

// statusSweepExtent is statusSweep with an explicit y-extent.
func statusSweepExtent(kind Kind, ymin, ymax float64, rs, ss []geom.KPE) []geom.Pair {
	rc := append([]geom.KPE(nil), rs...)
	sc := append([]geom.KPE(nil), ss...)
	sortByXL(rc)
	sortByXL(sc)
	var tests, touches int64
	stR := NewStatus(kind, ymin, ymax, &tests, &touches)
	stS := NewStatus(kind, ymin, ymax, &tests, &touches)
	var out []geom.Pair
	i, j := 0, 0
	for i < len(rc) || j < len(sc) {
		if j >= len(sc) || (i < len(rc) && rc[i].Rect.XL <= sc[j].Rect.XL) {
			r := rc[i]
			i++
			stS.Probe(r, func(s geom.KPE) { out = append(out, geom.Pair{R: r.ID, S: s.ID}) })
			stR.Insert(r)
		} else {
			s := sc[j]
			j++
			stR.Probe(s, func(r geom.KPE) { out = append(out, geom.Pair{R: r.ID, S: s.ID}) })
			stS.Insert(s)
		}
	}
	sortPairs(out)
	return out
}
