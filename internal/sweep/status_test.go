package sweep

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"spatialjoin/internal/datagen"
	"spatialjoin/internal/geom"
)

// statusSweep joins two slices through the streaming Status interface
// the way SSSJ does: merge by XL, probe the other side, insert into own.
func statusSweep(kind Kind, rs, ss []geom.KPE) []geom.Pair {
	rc := append([]geom.KPE(nil), rs...)
	sc := append([]geom.KPE(nil), ss...)
	sortByXL(rc)
	sortByXL(sc)
	var tests, touches int64
	stR := NewStatus(kind, 0, 1, &tests, &touches)
	stS := NewStatus(kind, 0, 1, &tests, &touches)
	var out []geom.Pair
	i, j := 0, 0
	for i < len(rc) || j < len(sc) {
		if j >= len(sc) || (i < len(rc) && rc[i].Rect.XL <= sc[j].Rect.XL) {
			r := rc[i]
			i++
			stS.Probe(r, func(s geom.KPE) { out = append(out, geom.Pair{R: r.ID, S: s.ID}) })
			stR.Insert(r)
		} else {
			s := sc[j]
			j++
			stR.Probe(s, func(r geom.KPE) { out = append(out, geom.Pair{R: r.ID, S: s.ID}) })
			stS.Insert(s)
		}
	}
	sortPairs(out)
	return out
}

func TestStatusSweepMatchesOracle(t *testing.T) {
	rs := datagen.Uniform(1, 500, 0.04)
	ss := datagen.Uniform(2, 500, 0.04)
	want := naive(rs, ss)
	for _, kind := range []Kind{ListKind, TrieKind, NestedLoopsKind} {
		got := statusSweep(kind, rs, ss)
		comparePairs(t, "status-"+string(kind), got, want)
	}
}

func TestStatusLenTracksResidency(t *testing.T) {
	var tests, touches int64
	for _, kind := range []Kind{ListKind, TrieKind} {
		st := NewStatus(kind, 0, 1, &tests, &touches)
		if st.Len() != 0 {
			t.Fatalf("%s: fresh status not empty", kind)
		}
		// Three rectangles expiring at different x.
		st.Insert(geom.KPE{ID: 1, Rect: geom.NewRect(0.0, 0.1, 0.2, 0.2)})
		st.Insert(geom.KPE{ID: 2, Rect: geom.NewRect(0.0, 0.4, 0.5, 0.5)})
		st.Insert(geom.KPE{ID: 3, Rect: geom.NewRect(0.0, 0.7, 0.9, 0.8)})
		if st.Len() != 3 {
			t.Fatalf("%s: Len = %d, want 3", kind, st.Len())
		}
		// A probe at x=0.6 must expire the first two (XH < 0.6) that it
		// visits; the trie only visits overlapping nodes, so Len is an
		// upper bound — but after a full-range probe it must be exact.
		st.Probe(geom.KPE{ID: 9, Rect: geom.NewRect(0.6, 0.0, 0.6, 1.0)}, func(geom.KPE) {})
		if st.Len() != 1 {
			t.Fatalf("%s: Len after full-range probe = %d, want 1", kind, st.Len())
		}
	}
}

func TestStatusProbeReportsOnlyOverlaps(t *testing.T) {
	var tests, touches int64
	for _, kind := range []Kind{ListKind, TrieKind} {
		st := NewStatus(kind, 0, 1, &tests, &touches)
		st.Insert(geom.KPE{ID: 1, Rect: geom.NewRect(0.0, 0.1, 1.0, 0.2)})
		st.Insert(geom.KPE{ID: 2, Rect: geom.NewRect(0.0, 0.8, 1.0, 0.9)})
		var hits []uint64
		st.Probe(geom.KPE{ID: 9, Rect: geom.NewRect(0.5, 0.15, 0.6, 0.5)}, func(k geom.KPE) {
			hits = append(hits, k.ID)
		})
		if len(hits) != 1 || hits[0] != 1 {
			t.Fatalf("%s: hits = %v, want [1]", kind, hits)
		}
	}
}

func TestStatusEquivalenceProperty(t *testing.T) {
	f := func(seed int64, nr, ns uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		rs := randomKPEs(rng, int(nr)%50+1)
		ss := randomKPEs(rng, int(ns)%50+1)
		want := naive(rs, ss)
		for _, kind := range []Kind{ListKind, TrieKind} {
			got := statusSweep(kind, rs, ss)
			if len(got) != len(want) {
				return false
			}
			for i := range got {
				if got[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestStatusNestedMapsToList(t *testing.T) {
	var tests, touches int64
	if _, ok := NewStatus(NestedLoopsKind, 0, 1, &tests, &touches).(*listStatus); !ok {
		t.Fatal("nested-loops kind must map to the list status")
	}
}

// Guard against regressions in pair ordering: statusSweep's output must
// be independent of which relation streams first on ties.
func TestStatusSweepTieBreaking(t *testing.T) {
	shared := geom.NewRect(0.5, 0.5, 0.6, 0.6)
	rs := []geom.KPE{{ID: 1, Rect: shared}}
	ss := []geom.KPE{{ID: 2, Rect: shared}}
	got := statusSweep(ListKind, rs, ss)
	if len(got) != 1 || got[0] != (geom.Pair{R: 1, S: 2}) {
		t.Fatalf("tie pair = %v", got)
	}
	sort.Slice(got, func(i, j int) bool { return got[i].Less(got[j]) })
}
