package sweep

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"spatialjoin/internal/datagen"
	"spatialjoin/internal/geom"
)

// naive computes the ground truth as sorted (R.ID, S.ID) pairs.
func naive(rs, ss []geom.KPE) []geom.Pair {
	var out []geom.Pair
	for _, r := range rs {
		for _, s := range ss {
			if r.Rect.Intersects(s.Rect) {
				out = append(out, geom.Pair{R: r.ID, S: s.ID})
			}
		}
	}
	sortPairs(out)
	return out
}

func sortPairs(ps []geom.Pair) {
	sort.Slice(ps, func(i, j int) bool { return ps[i].Less(ps[j]) })
}

func collect(a Algorithm, rs, ss []geom.KPE) []geom.Pair {
	// Copy inputs: Join may reorder.
	rc := append([]geom.KPE(nil), rs...)
	sc := append([]geom.KPE(nil), ss...)
	var out []geom.Pair
	a.Join(rc, sc, func(r, s geom.KPE) {
		out = append(out, geom.Pair{R: r.ID, S: s.ID})
	})
	sortPairs(out)
	return out
}

func allAlgorithms() []Algorithm {
	return []Algorithm{&NestedLoops{}, &ListSweep{}, &TrieSweep{}}
}

func comparePairs(t *testing.T, name string, got, want []geom.Pair) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d pairs, want %d", name, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: pair %d = %v, want %v", name, i, got[i], want[i])
		}
	}
}

func TestAlgorithmsMatchOracleUniform(t *testing.T) {
	rs := datagen.Uniform(1, 400, 0.06)
	ss := datagen.Uniform(2, 400, 0.06)
	want := naive(rs, ss)
	if len(want) == 0 {
		t.Fatal("test data produced no intersections")
	}
	for _, a := range allAlgorithms() {
		comparePairs(t, a.Name(), collect(a, rs, ss), want)
	}
}

func TestAlgorithmsMatchOracleClustered(t *testing.T) {
	rs := datagen.LARR(3, 600).KPEs
	ss := datagen.LAST(4, 600).KPEs
	want := naive(rs, ss)
	for _, a := range allAlgorithms() {
		comparePairs(t, a.Name(), collect(a, rs, ss), want)
	}
}

func TestAlgorithmsSelfJoin(t *testing.T) {
	rs := datagen.Uniform(5, 300, 0.05)
	want := naive(rs, rs)
	for _, a := range allAlgorithms() {
		comparePairs(t, a.Name(), collect(a, rs, rs), want)
	}
}

func TestAlgorithmsEmptyInputs(t *testing.T) {
	rs := datagen.Uniform(6, 20, 0.1)
	for _, a := range allAlgorithms() {
		if got := collect(a, nil, rs); len(got) != 0 {
			t.Errorf("%s: empty R produced %d pairs", a.Name(), len(got))
		}
		if got := collect(a, rs, nil); len(got) != 0 {
			t.Errorf("%s: empty S produced %d pairs", a.Name(), len(got))
		}
		if got := collect(a, nil, nil); len(got) != 0 {
			t.Errorf("%s: empty join produced %d pairs", a.Name(), len(got))
		}
	}
}

func TestAlgorithmsDegenerateRects(t *testing.T) {
	// Points, horizontal and vertical segments, identical rects, shared
	// edges — the boundary soup that breaks sloppy sweeps.
	rs := []geom.KPE{
		{ID: 0, Rect: geom.NewRect(0.5, 0.5, 0.5, 0.5)}, // point
		{ID: 1, Rect: geom.NewRect(0.1, 0.5, 0.9, 0.5)}, // horizontal segment
		{ID: 2, Rect: geom.NewRect(0.5, 0.1, 0.5, 0.9)}, // vertical segment
		{ID: 3, Rect: geom.NewRect(0.2, 0.2, 0.4, 0.4)},
	}
	ss := []geom.KPE{
		{ID: 0, Rect: geom.NewRect(0.5, 0.5, 0.5, 0.5)}, // same point
		{ID: 1, Rect: geom.NewRect(0.4, 0.4, 0.6, 0.6)}, // touches rect 3 at corner
		{ID: 2, Rect: geom.NewRect(0.9, 0.5, 1.0, 0.5)}, // touches segment 1 endpoint
		{ID: 3, Rect: geom.NewRect(0.0, 0.0, 0.1, 0.1)},
	}
	want := naive(rs, ss)
	for _, a := range allAlgorithms() {
		comparePairs(t, a.Name(), collect(a, rs, ss), want)
	}
}

func TestAlgorithmsEquivalenceProperty(t *testing.T) {
	f := func(seed int64, nr, ns uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		rs := randomKPEs(rng, int(nr)%60+1)
		ss := randomKPEs(rng, int(ns)%60+1)
		want := naive(rs, ss)
		for _, a := range allAlgorithms() {
			got := collect(a, rs, ss)
			if len(got) != len(want) {
				return false
			}
			for i := range got {
				if got[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// randomKPEs mixes tiny, large, degenerate and duplicated rectangles,
// including exact coordinate collisions that stress sweep tie-breaking.
func randomKPEs(rng *rand.Rand, n int) []geom.KPE {
	grid := []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 1}
	ks := make([]geom.KPE, n)
	for i := range ks {
		var r geom.Rect
		if rng.Intn(3) == 0 {
			// Snap to a coarse grid: exact coordinate ties.
			r = geom.NewRect(grid[rng.Intn(len(grid))], grid[rng.Intn(len(grid))],
				grid[rng.Intn(len(grid))], grid[rng.Intn(len(grid))])
		} else {
			cx, cy := rng.Float64(), rng.Float64()
			w, h := rng.Float64()*0.3, rng.Float64()*0.3
			r = geom.NewRect(cx, cy, cx+w, cy+h).ClampUnit()
		}
		ks[i] = geom.KPE{ID: uint64(i), Rect: r}
	}
	return ks
}

func TestTestsCounterAdvancesAndResets(t *testing.T) {
	rs := datagen.Uniform(7, 100, 0.1)
	ss := datagen.Uniform(8, 100, 0.1)
	for _, a := range allAlgorithms() {
		collect(a, rs, ss)
		if a.Tests() == 0 {
			t.Errorf("%s: Tests() = 0 after a join", a.Name())
		}
		a.ResetTests()
		if a.Tests() != 0 {
			t.Errorf("%s: ResetTests did not zero", a.Name())
		}
	}
}

func TestTrieDoesFewerTestsOnLargeInputs(t *testing.T) {
	// The reason the paper proposes the trie sweep (§3.2.2): on large
	// partitions it performs far fewer candidate tests than the list.
	rs := datagen.Uniform(9, 4000, 0.01)
	ss := datagen.Uniform(10, 4000, 0.01)
	list, trie := &ListSweep{}, &TrieSweep{}
	collect(list, rs, ss)
	collect(trie, rs, ss)
	if trie.Tests() >= list.Tests() {
		t.Fatalf("trie tests (%d) not below list tests (%d)", trie.Tests(), list.Tests())
	}
	if trie.Tests()*2 > list.Tests() {
		t.Logf("warning: trie advantage small: %d vs %d", trie.Tests(), list.Tests())
	}
}

func TestNewSelectsKinds(t *testing.T) {
	if New(NestedLoopsKind).Name() != "nested" {
		t.Error("nested")
	}
	if New(ListKind).Name() != "list" {
		t.Error("list")
	}
	if New(TrieKind).Name() != "trie" {
		t.Error("trie")
	}
	if New("unknown").Name() != "list" {
		t.Error("default must be list")
	}
}

func TestTrieCustomDepth(t *testing.T) {
	rs := datagen.Uniform(11, 200, 0.05)
	ss := datagen.Uniform(12, 200, 0.05)
	want := naive(rs, ss)
	for _, depth := range []int{1, 4, 24} {
		a := &TrieSweep{Depth: depth}
		comparePairs(t, "trie-depth", collect(a, rs, ss), want)
	}
}

func TestJoinMayReorderButNotMutateContents(t *testing.T) {
	rs := datagen.Uniform(13, 100, 0.05)
	ss := datagen.Uniform(14, 100, 0.05)
	rc := append([]geom.KPE(nil), rs...)
	sc := append([]geom.KPE(nil), ss...)
	(&ListSweep{}).Join(rc, sc, func(geom.KPE, geom.KPE) {})
	// Same multiset of elements.
	count := make(map[geom.KPE]int)
	for _, k := range rs {
		count[k]++
	}
	for _, k := range rc {
		count[k]--
	}
	for _, c := range count {
		if c != 0 {
			t.Fatal("Join changed slice contents, not just order")
		}
	}
}
