package sweep

import "spatialjoin/internal/geom"

// TrieSweep is the plane-sweep join of §3.2.2 whose sweep-line status is
// organized in interval *tries* [Knu 70] instead of a list. Each active
// rectangle is stored, keyed by its y-interval, at the trie node whose
// span is the shortest one covering the interval — the one-dimensional
// analogue of an MX-CIF quadtree. Probing a rectangle visits only the
// nodes whose span overlaps the probe's y-range, so for large partitions
// and selective joins far fewer candidate tests are performed than with a
// list. Compared to the dynamic interval trees suggested for SSSJ, the
// trie needs no rebalancing: expired entries are removed lazily while
// node item lists are scanned.
type TrieSweep struct {
	tests   int64
	touches int64
	// Depth is the maximum trie depth (bits of the normalized y-keys).
	// Zero selects DefaultTrieDepth.
	Depth int
}

// DefaultTrieDepth bounds the interval-trie depth. 16 bits resolve the
// partition's y-extent to 1/65536, below which node spans stop
// discriminating rectangles usefully.
const DefaultTrieDepth = 16

// Name implements Algorithm.
func (a *TrieSweep) Name() string { return string(TrieKind) }

// Tests implements Algorithm.
func (a *TrieSweep) Tests() int64 { return a.tests }

// Touches implements Algorithm: trie nodes visited by probe walks. The
// trie touches only nodes whose span overlaps the probe's y-range, so
// this grows far slower than the list's entry scans on large partitions.
func (a *TrieSweep) Touches() int64 { return a.touches }

// ResetTests implements Algorithm.
func (a *TrieSweep) ResetTests() { a.tests, a.touches = 0, 0 }

// Join implements Algorithm.
func (a *TrieSweep) Join(rs, ss []geom.KPE, emit Emit) {
	if len(rs) == 0 || len(ss) == 0 {
		return
	}
	sortByXL(rs)
	sortByXL(ss)

	depth := a.Depth
	if depth <= 0 {
		depth = DefaultTrieDepth
	}
	// Normalize y-keys to the joint y-extent of both inputs so the trie
	// discriminates within the partition actually being joined.
	ymin, ymax := rs[0].Rect.YL, rs[0].Rect.YH
	for _, k := range rs {
		ymin = min(ymin, k.Rect.YL)
		ymax = max(ymax, k.Rect.YH)
	}
	for _, k := range ss {
		ymin = min(ymin, k.Rect.YL)
		ymax = max(ymax, k.Rect.YH)
	}

	trieR := newTrieStatus(ymin, ymax, depth, &a.tests, &a.touches)
	trieS := newTrieStatus(ymin, ymax, depth, &a.tests, &a.touches)
	i, j := 0, 0
	for i < len(rs) || j < len(ss) {
		if j >= len(ss) || (i < len(rs) && rs[i].Rect.XL <= ss[j].Rect.XL) {
			r := rs[i]
			i++
			trieS.Probe(r, func(s geom.KPE) { emit(r, s) })
			trieR.Insert(r)
		} else {
			s := ss[j]
			j++
			trieR.Probe(s, func(r geom.KPE) { emit(r, s) })
			trieS.Insert(s)
		}
	}
}

// intervalTrie is the sweep-line status for one relation: a binary trie
// over normalized y-keys whose nodes carry the rectangles assigned to
// their span.
type intervalTrie struct {
	root    trieNode
	bits    int
	scale   func(float64) uint32
	tests   *int64
	touches *int64
}

type trieNode struct {
	children [2]*trieNode
	items    []geom.KPE
}

// insert stores k at the deepest node whose span covers its y-interval.
func (t *intervalTrie) insert(k geom.KPE) {
	lo := t.scale(k.Rect.YL)
	hi := t.scale(k.Rect.YH)
	n := &t.root
	for d := t.bits - 1; d >= 0; d-- {
		bl := (lo >> uint(d)) & 1
		bh := (hi >> uint(d)) & 1
		if bl != bh {
			break // interval crosses this node's midpoint: store here
		}
		c := n.children[bl]
		if c == nil {
			c = &trieNode{}
			n.children[bl] = c
		}
		n = c
	}
	n.items = append(n.items, k)
}

// probe reports every live stored rectangle whose y-range overlaps probe,
// removing entries whose right edge has fallen behind the sweep line. It
// returns the number of entries removed.
func (t *intervalTrie) probe(probe geom.KPE, report func(geom.KPE)) int {
	qlo := t.scale(probe.Rect.YL)
	qhi := t.scale(probe.Rect.YH)
	return t.walk(&t.root, t.bits, 0, qlo, qhi, probe, report)
}

// walk visits node n whose span is [base, base + 2^depthLeft) on the
// normalized key grid, pruning subtrees outside [qlo, qhi]. It returns
// the number of expired entries removed.
func (t *intervalTrie) walk(n *trieNode, depthLeft int, base, qlo, qhi uint32, probe geom.KPE, report func(geom.KPE)) int {
	*t.touches++
	x := probe.Rect.XL
	items := n.items
	w := 0
	for i := range items {
		if items[i].Rect.XH < x {
			continue // expired under the sweep line: lazy removal
		}
		items[w] = items[i]
		w++
		*t.tests++
		if items[i].Rect.IntersectsY(probe.Rect) {
			report(items[i])
		}
	}
	removed := len(items) - w
	n.items = items[:w]

	if depthLeft == 0 {
		return removed
	}
	half := uint32(1) << uint(depthLeft-1)
	if c := n.children[0]; c != nil && qlo < base+half {
		removed += t.walk(c, depthLeft-1, base, qlo, qhi, probe, report)
	}
	if c := n.children[1]; c != nil && qhi >= base+half {
		removed += t.walk(c, depthLeft-1, base+half, qlo, qhi, probe, report)
	}
	return removed
}
