package sweep

import (
	"fmt"
	"testing"

	"spatialjoin/internal/datagen"
	"spatialjoin/internal/geom"
)

// Benchmarks of the internal join algorithms at partition-like sizes:
// small partitions are PBSM's normal diet at small memory, large ones
// appear when memory grows — the regime where the paper's trie sweep
// overtakes the classic list (§3.2.2, Figures 4 and 5).

func benchJoin(b *testing.B, alg Algorithm, n int) {
	rs := datagen.Uniform(1, n, 0.01)
	ss := datagen.Uniform(2, n, 0.01)
	rc := make([]geom.KPE, n)
	sc := make([]geom.KPE, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(rc, rs)
		copy(sc, ss)
		alg.Join(rc, sc, func(geom.KPE, geom.KPE) {})
	}
	b.ReportMetric(float64(alg.Tests())/float64(b.N), "tests/op")
}

func BenchmarkAlgorithms(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		for _, kind := range []Kind{NestedLoopsKind, ListKind, TrieKind} {
			if kind == NestedLoopsKind && n > 1000 {
				continue // quadratic; no insight past this size
			}
			b.Run(fmt.Sprintf("%s/n=%d", kind, n), func(b *testing.B) {
				benchJoin(b, New(kind), n)
			})
		}
	}
}

func BenchmarkTrieStatusInsertProbe(b *testing.B) {
	ks := datagen.Uniform(3, 4096, 0.01)
	var tests, touches int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := newTrieStatus(0, 1, 0, &tests, &touches)
		for _, k := range ks {
			st.Probe(k, func(geom.KPE) {})
			st.Insert(k)
		}
	}
}

func BenchmarkListStatusInsertProbe(b *testing.B) {
	ks := datagen.Uniform(3, 4096, 0.01)
	var tests, touches int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := &listStatus{tests: &tests, touches: &touches}
		for _, k := range ks {
			st.Probe(k, func(geom.KPE) {})
			st.Insert(k)
		}
	}
}
