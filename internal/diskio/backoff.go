package diskio

import (
	"hash/fnv"
	"strconv"
	"sync"
	"time"
)

// Backoff is a pluggable retry-delay policy: capped exponential growth
// with deterministic, seeded jitter. It replaces the storage layer's
// historical immediate-retry behavior (retry as fast as the loop spins)
// with a bounded pause between attempts, and is reused by the shard
// coordinator to pace worker-process restarts.
//
// Determinism matters more here than entropy: the same (Seed, key,
// attempt) triple always yields the same delay, so a seeded chaos run
// or benchmark replays byte-identically. Jitter still decorrelates
// *different* keys (two files, two shards) retrying after the same
// fault, which is all jitter is for.
//
// A nil *Backoff is valid everywhere and means "no delay" — the legacy
// immediate-retry behavior.
type Backoff struct {
	// Base is the delay before the first retry (attempt 1).
	Base time.Duration
	// Cap bounds the grown delay; <= 0 means uncapped.
	Cap time.Duration
	// Factor is the per-attempt growth multiplier; values <= 1 mean
	// constant Base delay.
	Factor float64
	// Jitter in [0, 1] shrinks each delay by a deterministic fraction:
	// the delay is scaled by a factor drawn from [1-Jitter, 1]. Zero
	// disables jitter.
	Jitter float64
	// Seed selects the jitter stream; two policies with different seeds
	// jitter differently for the same key and attempt.
	Seed uint64
}

// Delay returns the pause before the given retry attempt (1-based) for
// the given key (a file name, a shard identity). A nil policy, a
// non-positive Base, or a non-positive attempt yields zero.
func (b *Backoff) Delay(key string, attempt int) time.Duration {
	if b == nil || b.Base <= 0 || attempt <= 0 {
		return 0
	}
	d := float64(b.Base)
	if b.Factor > 1 {
		for i := 1; i < attempt; i++ {
			d *= b.Factor
			if b.Cap > 0 && d >= float64(b.Cap) {
				break
			}
		}
	}
	if b.Cap > 0 && d > float64(b.Cap) {
		d = float64(b.Cap)
	}
	if j := b.Jitter; j > 0 {
		if j > 1 {
			j = 1
		}
		// Deterministic unit draw in [0, 1) from (Seed, key, attempt).
		h := fnv.New64a()
		var buf [8]byte
		for i := 0; i < 8; i++ {
			buf[i] = byte(b.Seed >> (8 * i))
		}
		h.Write(buf[:])
		h.Write([]byte(key))
		h.Write([]byte(strconv.Itoa(attempt)))
		u := float64(h.Sum64()>>11) / float64(1<<53)
		d *= 1 - j*u
	}
	return time.Duration(d)
}

// KeyedBackoff tracks consecutive failures per key and derives each
// key's next delay from the wrapped policy. It is the stateful
// companion to the stateless Backoff: callers that retry many
// independent identities (one file, one shard, one network endpoint)
// record failures per key and reset a key on success, so a flapping
// endpoint backs off on its own schedule without slowing its healthy
// siblings. Safe for concurrent use; a nil *KeyedBackoff never delays.
type KeyedBackoff struct {
	mu       sync.Mutex
	policy   *Backoff
	attempts map[string]int
}

// NewKeyedBackoff wraps policy (which may itself be nil — a valid
// "no delay" policy whose attempt counts are still tracked).
func NewKeyedBackoff(policy *Backoff) *KeyedBackoff {
	return &KeyedBackoff{policy: policy, attempts: make(map[string]int)}
}

// Fail records one failure of key and returns the pause before its
// next attempt under the wrapped policy.
func (kb *KeyedBackoff) Fail(key string) time.Duration {
	if kb == nil {
		return 0
	}
	kb.mu.Lock()
	kb.attempts[key]++
	n := kb.attempts[key]
	kb.mu.Unlock()
	return kb.policy.Delay(key, n)
}

// Attempts returns the consecutive-failure count of key.
func (kb *KeyedBackoff) Attempts(key string) int {
	if kb == nil {
		return 0
	}
	kb.mu.Lock()
	defer kb.mu.Unlock()
	return kb.attempts[key]
}

// Reset clears key's consecutive-failure count after a success.
func (kb *KeyedBackoff) Reset(key string) {
	if kb == nil {
		return
	}
	kb.mu.Lock()
	delete(kb.attempts, key)
	kb.mu.Unlock()
}

// Sleep pauses for Delay(key, attempt), waking early when cancel
// reports an error. It sleeps in short slices and polls cancel between
// them, so a canceled join stops waiting within one slice instead of
// serving out the full backoff. cancel may be nil (no cancellation).
// The cancel error, if any, is returned unwrapped.
func (b *Backoff) Sleep(key string, attempt int, cancel func() error) error {
	d := b.Delay(key, attempt)
	for d > 0 {
		if cancel != nil {
			if err := cancel(); err != nil {
				return err
			}
		}
		slice := d
		if slice > 5*time.Millisecond {
			slice = 5 * time.Millisecond
		}
		time.Sleep(slice)
		d -= slice
	}
	if cancel != nil {
		return cancel()
	}
	return nil
}
