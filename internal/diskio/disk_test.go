package diskio

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestDefaults(t *testing.T) {
	d := NewDisk(0, 0, 0)
	if d.PageSize() != DefaultPageSize {
		t.Errorf("PageSize = %d", d.PageSize())
	}
	if d.PT() != DefaultPT {
		t.Errorf("PT = %g", d.PT())
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	d := NewDisk(128, 10, time.Millisecond)
	f := d.Create("a")
	w := f.NewWriter(2)
	payload := []byte("the quick brown fox jumps over the lazy dog")
	for i := 0; i < 100; i++ {
		w.Write(payload)
	}
	w.Flush()
	if f.Len() != 100*len(payload) {
		t.Fatalf("file length %d, want %d", f.Len(), 100*len(payload))
	}
	r := f.NewReader(2)
	got := make([]byte, len(payload))
	for i := 0; i < 100; i++ {
		ok, err := r.ReadFull(got)
		if err != nil || !ok {
			t.Fatalf("short read at record %d (ok=%v err=%v)", i, ok, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("record %d corrupted", i)
		}
	}
	if ok, _ := r.ReadFull(got); ok {
		t.Fatal("read past end must fail")
	}
}

func TestCostModelPerRequest(t *testing.T) {
	// A request of n contiguous pages costs PT + n.
	d := NewDisk(100, 20, time.Millisecond)
	f := d.Create("a")
	w := f.NewWriter(4) // 400-byte buffer
	w.Write(make([]byte, 400))
	w.Flush() // one full flush inside Write already? exactly at boundary: flushed once
	st := d.Stats()
	if st.WriteRequests != 1 {
		t.Fatalf("WriteRequests = %d, want 1", st.WriteRequests)
	}
	if st.PagesWritten != 4 {
		t.Fatalf("PagesWritten = %d, want 4", st.PagesWritten)
	}
	if st.CostUnits != 24 { // PT(20) + 4 pages
		t.Fatalf("CostUnits = %g, want 24", st.CostUnits)
	}
}

func TestSequentialReadBatchesPages(t *testing.T) {
	d := NewDisk(100, 20, time.Millisecond)
	f := d.Create("a")
	w := f.NewWriter(8)
	w.Write(make([]byte, 1600)) // 16 pages
	w.Flush()
	d.ResetStats()

	r := f.NewReader(8) // 8 pages per request
	buf := make([]byte, 1600)
	r.ReadFull(buf)
	st := d.Stats()
	if st.ReadRequests != 2 {
		t.Fatalf("ReadRequests = %d, want 2 (two 8-page requests)", st.ReadRequests)
	}
	if st.CostUnits != 2*(20+8) {
		t.Fatalf("CostUnits = %g, want 56", st.CostUnits)
	}
}

func TestPartialPageChargedAsFullPage(t *testing.T) {
	d := NewDisk(100, 20, time.Millisecond)
	f := d.Create("a")
	w := f.NewWriter(1)
	w.Write(make([]byte, 1)) // 1 byte -> 1 page on flush
	w.Flush()
	if st := d.Stats(); st.PagesWritten != 1 {
		t.Fatalf("PagesWritten = %d, want 1", st.PagesWritten)
	}
}

func TestEmptyFlushIsFree(t *testing.T) {
	d := NewDisk(100, 20, time.Millisecond)
	f := d.Create("a")
	w := f.NewWriter(1)
	w.Flush()
	w.Flush()
	if st := d.Stats(); st.CostUnits != 0 {
		t.Fatalf("empty flushes must be free, cost = %g", st.CostUnits)
	}
}

func TestReadAtCharges(t *testing.T) {
	d := NewDisk(100, 20, time.Millisecond)
	f := d.Create("a")
	w := f.NewWriter(4)
	w.Write(make([]byte, 1000))
	w.Flush()
	d.ResetStats()
	buf := make([]byte, 250)
	if n, err := f.ReadAt(buf, 100); n != 250 || err != nil {
		t.Fatalf("ReadAt = (%d, %v)", n, err)
	}
	st := d.Stats()
	if st.ReadRequests != 1 || st.PagesRead != 3 { // 250 bytes = 3 pages of 100
		t.Fatalf("stats = %+v", st)
	}
}

// TestReadAtEdges pins the io.ReaderAt contract at the two boundary
// conditions that used to be conflated: an offset at or past EOF is a
// normal end-of-data condition (io.EOF), while a negative offset is a
// caller bug and gets its own error.
func TestReadAtEdges(t *testing.T) {
	d := NewDisk(100, 20, time.Millisecond)
	f := d.Create("a")
	w := f.NewWriter(4)
	w.Write(make([]byte, 1000))
	w.Flush()

	buf := make([]byte, 250)
	if n, err := f.ReadAt(buf, int64(f.Len())); n != 0 || err != io.EOF {
		t.Fatalf("ReadAt at EOF = (%d, %v), want (0, io.EOF)", n, err)
	}
	if n, err := f.ReadAt(buf, int64(f.Len())+1000); n != 0 || err != io.EOF {
		t.Fatalf("ReadAt past EOF = (%d, %v), want (0, io.EOF)", n, err)
	}
	if n, err := f.ReadAt(buf, -1); n != 0 || !errors.Is(err, ErrNegativeOffset) {
		t.Fatalf("ReadAt(-1) = (%d, %v), want (0, ErrNegativeOffset)", n, err)
	}
	if errors.Is(io.EOF, ErrNegativeOffset) || errors.Is(ErrNegativeOffset, io.EOF) {
		t.Fatal("the two edge errors must be distinguishable")
	}
	// A short read at the tail returns the data it could get plus io.EOF.
	if n, err := f.ReadAt(buf, int64(f.Len())-100); n != 100 || err != io.EOF {
		t.Fatalf("short tail ReadAt = (%d, %v), want (100, io.EOF)", n, err)
	}
}

func TestRangeReader(t *testing.T) {
	d := NewDisk(64, 5, time.Millisecond)
	f := d.Create("a")
	w := f.NewWriter(4)
	data := make([]byte, 1000)
	for i := range data {
		data[i] = byte(i)
	}
	w.Write(data)
	w.Flush()

	r := f.NewRangeReader(2, 100, 300)
	if r.Remaining() != 200 {
		t.Fatalf("Remaining = %d", r.Remaining())
	}
	buf := make([]byte, 200)
	if ok, err := r.ReadFull(buf); !ok || err != nil {
		t.Fatalf("short range read (ok=%v err=%v)", ok, err)
	}
	if !bytes.Equal(buf, data[100:300]) {
		t.Fatal("range contents wrong")
	}
	if r.Remaining() != 0 {
		t.Fatalf("Remaining after read = %d", r.Remaining())
	}
	// Out-of-bounds ranges clamp.
	r = f.NewRangeReader(2, 900, 5000)
	if r.Remaining() != 100 {
		t.Fatalf("clamped Remaining = %d", r.Remaining())
	}
}

func TestCreateRemoveOpen(t *testing.T) {
	d := NewDisk(0, 0, 0)
	f := d.Create("x")
	if d.Open("x") != f {
		t.Fatal("Open must find created file")
	}
	a := d.Create("")
	b := d.Create("")
	if a.Name() == b.Name() {
		t.Fatal("anonymous files must get unique names")
	}
	d.Remove("x")
	if d.Open("x") != nil {
		t.Fatal("Remove must delete the file")
	}
}

func TestSimTimeConversion(t *testing.T) {
	d := NewDisk(100, 20, time.Millisecond)
	f := d.Create("a")
	w := f.NewWriter(1)
	w.Write(make([]byte, 100))
	w.Flush() // cost = 21 units
	if got, want := d.SimTime(), 21*time.Millisecond; got != want {
		t.Fatalf("SimTime = %v, want %v", got, want)
	}
}

func TestStatsAddSub(t *testing.T) {
	a := Stats{ReadRequests: 1, WriteRequests: 2, PagesRead: 3, PagesWritten: 4, CostUnits: 5}
	b := a
	b.Add(a)
	if b.PagesRead != 6 || b.CostUnits != 10 {
		t.Fatalf("Add wrong: %+v", b)
	}
	if d := b.Sub(a); d != a {
		t.Fatalf("Sub wrong: %+v", d)
	}
}

// Round-trip property: any sequence of writes reads back identically,
// regardless of buffer sizes.
func TestWriterReaderProperty(t *testing.T) {
	f := func(seed int64, bufW, bufR uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		d := NewDisk(32, 5, time.Millisecond)
		file := d.Create("p")
		w := file.NewWriter(int(bufW%7) + 1)
		var all []byte
		for i := 0; i < 50; i++ {
			chunk := make([]byte, rng.Intn(100))
			rng.Read(chunk)
			w.Write(chunk)
			all = append(all, chunk...)
		}
		w.Flush()
		got := make([]byte, len(all))
		r := file.NewReader(int(bufR%7) + 1)
		if len(all) > 0 {
			if ok, err := r.ReadFull(got); !ok || err != nil {
				return false
			}
		}
		return bytes.Equal(got, all)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentReadsAccountCorrectly(t *testing.T) {
	// Multiple goroutines reading distinct files must not lose charges —
	// the contract PBSM's parallel join phase relies on.
	d := NewDisk(100, 20, time.Millisecond)
	const files = 8
	const pagesPer = 16
	names := make([]string, files)
	for i := range names {
		f := d.Create("")
		w := f.NewWriter(pagesPer)
		w.Write(make([]byte, pagesPer*100))
		w.Flush()
		names[i] = f.Name()
	}
	base := d.Stats()

	var wg sync.WaitGroup
	for i := 0; i < files; i++ {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			r := d.Open(name).NewReader(2) // 8 requests of 2 pages each
			buf := make([]byte, pagesPer*100)
			if ok, err := r.ReadFull(buf); !ok || err != nil {
				t.Errorf("concurrent read failed (ok=%v err=%v)", ok, err)
			}
		}(names[i])
	}
	wg.Wait()

	delta := d.Stats().Sub(base)
	wantPages := int64(files * pagesPer)
	wantReqs := int64(files * pagesPer / 2)
	if delta.PagesRead != wantPages || delta.ReadRequests != wantReqs {
		t.Fatalf("lost charges under concurrency: %+v (want %d pages, %d requests)",
			delta, wantPages, wantReqs)
	}
	if want := float64(wantPages) + 20*float64(wantReqs); delta.CostUnits != want {
		t.Fatalf("cost units %g, want %g", delta.CostUnits, want)
	}
}
