package diskio

import (
	"context"
	"errors"
	"testing"
	"time"
)

func testDisk() *Disk { return NewDisk(4096, 20, time.Microsecond) }

// TestRegistryLifecycle: Create registers, Remove unregisters and
// deletes, Sweep deletes the rest.
func TestRegistryLifecycle(t *testing.T) {
	d := testDisk()
	r := d.NewRegistry()
	a, b, c := r.Create(), r.Create(), r.Create()
	if got := r.Live(); got != 3 {
		t.Fatalf("Live = %d, want 3", got)
	}
	if got := d.NumFiles(); got != 3 {
		t.Fatalf("NumFiles = %d, want 3", got)
	}
	r.Remove(b)
	if d.Open(b.Name()) != nil {
		t.Fatal("Remove left the file on disk")
	}
	if got := r.Live(); got != 2 {
		t.Fatalf("Live after Remove = %d, want 2", got)
	}
	if n := r.Sweep(); n != 2 {
		t.Fatalf("Sweep removed %d, want 2", n)
	}
	if got := d.NumFiles(); got != 0 {
		t.Fatalf("NumFiles after sweep = %d (%v), want 0", got, d.FileNames())
	}
	if d.Open(a.Name()) != nil || d.Open(c.Name()) != nil {
		t.Fatal("swept files still open")
	}
	// Sweep is idempotent.
	if n := r.Sweep(); n != 0 {
		t.Fatalf("second Sweep removed %d, want 0", n)
	}
}

// TestRegistryForgetAndAdopt: Forget transfers ownership out (Sweep must
// not delete), Adopt transfers it in.
func TestRegistryForgetAndAdopt(t *testing.T) {
	d := testDisk()
	r := d.NewRegistry()
	f := r.Create()
	r.Forget(f)
	if n := r.Sweep(); n != 0 {
		t.Fatalf("Sweep removed %d forgotten files", n)
	}
	if d.Open(f.Name()) == nil {
		t.Fatal("forgotten file was deleted")
	}
	r.Adopt(f)
	if n := r.Sweep(); n != 1 {
		t.Fatalf("Sweep removed %d, want 1 adopted file", n)
	}
	if d.NumFiles() != 0 {
		t.Fatal("adopted file survived the sweep")
	}
}

// TestRegistryNilFiles: nil files are ignored everywhere, so error paths
// can call unconditionally.
func TestRegistryNilFiles(t *testing.T) {
	r := testDisk().NewRegistry()
	r.Remove(nil)
	r.Adopt(nil)
	r.Forget(nil)
	if r.Live() != 0 {
		t.Fatal("nil file was registered")
	}
}

// TestDiskCancelHook: once a canceled context's hook is installed, reads
// and writes fail with the context error before touching the device —
// and removal still works, so sweeps succeed mid-abort.
func TestDiskCancelHook(t *testing.T) {
	d := testDisk()
	ctx, cancel := context.WithCancel(context.Background())
	d.SetCancel(func() error { return ctx.Err() })

	f := d.Create("f")
	w := f.NewWriter(1)
	if _, err := w.Write(make([]byte, 8192)); err != nil {
		t.Fatalf("write before cancel: %v", err)
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("flush before cancel: %v", err)
	}
	before := d.Stats()

	cancel()
	if _, err := w.Write(make([]byte, 8192)); !errors.Is(err, context.Canceled) {
		t.Fatalf("write after cancel: %v, want context.Canceled", err)
	}
	r := f.NewReader(1)
	if _, err := r.Read(make([]byte, 16)); !errors.Is(err, context.Canceled) {
		t.Fatalf("read after cancel: %v, want context.Canceled", err)
	}
	after := d.Stats()
	if after.ReadRequests != before.ReadRequests || after.WriteRequests != before.WriteRequests {
		t.Fatalf("canceled requests were charged: %+v -> %+v", before, after)
	}

	// Cleanup must not be blocked by the hook.
	d.Remove(f.Name())
	if d.NumFiles() != 0 {
		t.Fatal("Remove failed under a canceled hook")
	}

	// Unsetting the hook restores normal service.
	d.SetCancel(nil)
	f2 := d.Create("g")
	w2 := f2.NewWriter(1)
	if _, err := w2.Write([]byte("ok")); err != nil {
		t.Fatalf("write after unhook: %v", err)
	}
	if err := w2.Flush(); err != nil {
		t.Fatalf("flush after unhook: %v", err)
	}
}
