package diskio

import (
	"errors"
	"testing"
	"time"
)

// TestBackoffGrowthAndCap proves the delay grows by Factor per attempt
// and never exceeds Cap.
func TestBackoffGrowthAndCap(t *testing.T) {
	b := &Backoff{Base: time.Millisecond, Cap: 8 * time.Millisecond, Factor: 2}
	want := []time.Duration{
		1 * time.Millisecond,
		2 * time.Millisecond,
		4 * time.Millisecond,
		8 * time.Millisecond,
		8 * time.Millisecond, // capped
		8 * time.Millisecond,
	}
	for i, w := range want {
		if got := b.Delay("f", i+1); got != w {
			t.Errorf("Delay(attempt %d) = %v, want %v", i+1, got, w)
		}
	}
	if got := b.Delay("f", 0); got != 0 {
		t.Errorf("Delay(attempt 0) = %v, want 0", got)
	}
	var nilB *Backoff
	if got := nilB.Delay("f", 3); got != 0 {
		t.Errorf("nil Backoff Delay = %v, want 0", got)
	}
}

// TestBackoffJitterDeterminism proves the jittered delay is a pure
// function of (Seed, key, attempt): same inputs, same delay; different
// keys or seeds, (almost surely) different delays — and always within
// [ (1-Jitter)*grown, grown ].
func TestBackoffJitterDeterminism(t *testing.T) {
	b := &Backoff{Base: 10 * time.Millisecond, Cap: time.Second, Factor: 2, Jitter: 0.5, Seed: 42}
	for attempt := 1; attempt <= 5; attempt++ {
		d1 := b.Delay("file-a", attempt)
		d2 := b.Delay("file-a", attempt)
		if d1 != d2 {
			t.Fatalf("attempt %d: delay not deterministic: %v vs %v", attempt, d1, d2)
		}
		grown := b.Base * time.Duration(1<<(attempt-1))
		if grown > b.Cap {
			grown = b.Cap
		}
		if d1 > grown || d1 < grown/2 {
			t.Errorf("attempt %d: jittered delay %v outside [%v, %v]", attempt, d1, grown/2, grown)
		}
	}
	if b.Delay("file-a", 1) == b.Delay("file-b", 1) {
		t.Error("jitter does not decorrelate distinct keys")
	}
	other := &Backoff{Base: b.Base, Cap: b.Cap, Factor: b.Factor, Jitter: b.Jitter, Seed: 43}
	if b.Delay("file-a", 1) == other.Delay("file-a", 1) {
		t.Error("jitter does not depend on the seed")
	}
}

// TestBackoffSleepCancel proves a sleep wakes early when the cancel
// hook fires: canceling during a long backoff must not serve out the
// full delay.
func TestBackoffSleepCancel(t *testing.T) {
	b := &Backoff{Base: 10 * time.Second, Factor: 1}
	canceled := errors.New("canceled mid-backoff")
	calls := 0
	cancel := func() error {
		calls++
		if calls > 2 {
			return canceled
		}
		return nil
	}
	start := time.Now()
	err := b.Sleep("f", 1, cancel)
	if !errors.Is(err, canceled) {
		t.Fatalf("Sleep returned %v, want the cancel error", err)
	}
	if el := time.Since(start); el > time.Second {
		t.Fatalf("Sleep took %v after cancellation; want early wake", el)
	}
}

// TestBackoffSleepCompletes proves an uncanceled sleep serves roughly
// the configured delay and returns nil.
func TestBackoffSleepCompletes(t *testing.T) {
	b := &Backoff{Base: 5 * time.Millisecond, Factor: 1}
	start := time.Now()
	if err := b.Sleep("f", 1, nil); err != nil {
		t.Fatalf("Sleep = %v, want nil", err)
	}
	if el := time.Since(start); el < 4*time.Millisecond {
		t.Fatalf("Sleep returned after %v, want >= ~5ms", el)
	}
}

// TestDiskRetrySleep proves the Disk-level hook honors the installed
// policy and stays a cancel-polling no-op without one.
func TestDiskRetrySleep(t *testing.T) {
	d := NewDisk(4096, 20, time.Microsecond)
	if err := d.RetrySleep("f", 1); err != nil {
		t.Fatalf("RetrySleep without policy = %v, want nil", err)
	}
	boom := errors.New("canceled")
	d.SetCancel(func() error { return boom })
	if err := d.RetrySleep("f", 1); !errors.Is(err, boom) {
		t.Fatalf("RetrySleep without policy under cancel = %v, want cancel error", err)
	}
	d.SetCancel(nil)
	d.SetBackoff(&Backoff{Base: 2 * time.Millisecond, Factor: 1})
	start := time.Now()
	if err := d.RetrySleep("f", 1); err != nil {
		t.Fatalf("RetrySleep with policy = %v, want nil", err)
	}
	if el := time.Since(start); el < time.Millisecond {
		t.Fatalf("RetrySleep returned after %v, want the policy delay", el)
	}
}

// TestKeyedBackoffIndependentKeys proves the per-key failure counters
// grow and reset independently: one flapping key climbs the policy's
// delay ladder while a healthy sibling stays at zero.
func TestKeyedBackoffIndependentKeys(t *testing.T) {
	kb := NewKeyedBackoff(&Backoff{Base: time.Millisecond, Cap: 8 * time.Millisecond, Factor: 2})
	if d := kb.Fail("a"); d != time.Millisecond {
		t.Fatalf("first failure of a: delay %v, want 1ms", d)
	}
	if d := kb.Fail("a"); d != 2*time.Millisecond {
		t.Fatalf("second failure of a: delay %v, want 2ms", d)
	}
	if got := kb.Attempts("a"); got != 2 {
		t.Fatalf("Attempts(a) = %d, want 2", got)
	}
	if got := kb.Attempts("b"); got != 0 {
		t.Fatalf("Attempts(b) = %d, want 0 (keys must be independent)", got)
	}
	if d := kb.Fail("b"); d != time.Millisecond {
		t.Fatalf("first failure of b: delay %v, want 1ms", d)
	}
	kb.Reset("a")
	if got := kb.Attempts("a"); got != 0 {
		t.Fatalf("Attempts(a) after Reset = %d, want 0", got)
	}
	if d := kb.Fail("a"); d != time.Millisecond {
		t.Fatalf("failure of a after Reset: delay %v, want the base again", d)
	}
}

// TestKeyedBackoffNilSafety: a nil tracker and a tracker over a nil
// policy must both be usable and delay-free.
func TestKeyedBackoffNilSafety(t *testing.T) {
	var nilKB *KeyedBackoff
	if d := nilKB.Fail("x"); d != 0 {
		t.Fatalf("nil KeyedBackoff Fail = %v, want 0", d)
	}
	nilKB.Reset("x")
	if got := nilKB.Attempts("x"); got != 0 {
		t.Fatalf("nil KeyedBackoff Attempts = %d, want 0", got)
	}
	kb := NewKeyedBackoff(nil)
	if d := kb.Fail("x"); d != 0 {
		t.Fatalf("nil-policy Fail = %v, want 0", d)
	}
	if got := kb.Attempts("x"); got != 1 {
		t.Fatalf("nil-policy Attempts = %d, want 1 (counting still works)", got)
	}
}
