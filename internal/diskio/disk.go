// Package diskio simulates the secondary-storage model of §2 of the
// paper. Data is transferred between main memory and disk in pages of
// fixed size; a request for n contiguous pages costs PT + n
// page-transfer units, where PT is the ratio of positioning time to
// transfer time. Reading the join inputs and writing the final output are
// free of charge in the paper's model, so only intermediate files
// (partitions, level files, sort runs) are created on a Disk.
//
// Files are held in memory; the simulation is about *accounting*, not
// persistence. Every read and write request is charged to the Disk's
// counters, and the accumulated cost converts to simulated seconds via
// the configured page-transfer time.
//
// Cost accounting and the file directory are guarded by a mutex, so
// multiple goroutines may read distinct files concurrently (the parallel
// join phase of PBSM relies on this). Concurrent writers to the SAME
// file are not supported.
package diskio

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Default model parameters. PT=20 with a 0.5 ms page-transfer time models
// a 10 ms average positioning time, in the ballpark of the 2 GB Seagate
// disk of the paper's testbed.
const (
	DefaultPageSize = 8192
	DefaultPT       = 20.0
	DefaultTransfer = 500 * time.Microsecond
)

// Disk is a simulated disk device. The zero value is not usable; call
// NewDisk.
type Disk struct {
	pageSize int
	pt       float64
	transfer time.Duration

	mu      sync.Mutex
	stats   Stats
	files   map[string]*File
	seq     int
	fp      *FaultPolicy
	tr      Tracer
	cancel  func() error
	latency time.Duration
	backoff *Backoff

	// met holds the live-metrics handles installed by SetMetrics, read
	// on every request with one atomic load so the disabled mode costs a
	// pointer test (see metrics.go).
	met atomic.Pointer[diskMetrics]
}

// Tracer receives rare storage-layer events: request retries after
// transient faults, injected latency spikes, torn writes and bit flips.
// Only exceptional events are reported — the per-request hot path stays
// untraced — so attaching a tracer costs nothing on a healthy disk.
// Implementations must be safe for concurrent use; *trace.Recorder
// satisfies the interface.
type Tracer interface {
	IOEvent(kind, file string)
}

// Stats aggregates the I/O activity charged to a Disk.
type Stats struct {
	ReadRequests  int64   // positioned read requests
	WriteRequests int64   // positioned write requests
	PagesRead     int64   // total pages transferred in
	PagesWritten  int64   // total pages transferred out
	CostUnits     float64 // sum of PT + n over all requests
	Retries       int64   // request retries after transient faults (recfile layer)
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.ReadRequests += other.ReadRequests
	s.WriteRequests += other.WriteRequests
	s.PagesRead += other.PagesRead
	s.PagesWritten += other.PagesWritten
	s.CostUnits += other.CostUnits
	s.Retries += other.Retries
}

// Sub returns s minus other, useful for per-phase deltas.
func (s Stats) Sub(other Stats) Stats {
	return Stats{
		ReadRequests:  s.ReadRequests - other.ReadRequests,
		WriteRequests: s.WriteRequests - other.WriteRequests,
		PagesRead:     s.PagesRead - other.PagesRead,
		PagesWritten:  s.PagesWritten - other.PagesWritten,
		CostUnits:     s.CostUnits - other.CostUnits,
		Retries:       s.Retries - other.Retries,
	}
}

// NewDisk creates a Disk with the given page size in bytes, positioning
// ratio pt, and per-page transfer time. Non-positive arguments select the
// package defaults.
func NewDisk(pageSize int, pt float64, transfer time.Duration) *Disk {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	if pt <= 0 {
		pt = DefaultPT
	}
	if transfer <= 0 {
		transfer = DefaultTransfer
	}
	return &Disk{
		pageSize: pageSize,
		pt:       pt,
		transfer: transfer,
		files:    make(map[string]*File),
	}
}

// PageSize returns the page size in bytes.
func (d *Disk) PageSize() int { return d.pageSize }

// SetLatency turns the accounting-only cost model into real wall-clock
// latency: every subsequent request sleeps perUnit for each cost unit it
// is charged (PT + pages transferred). Zero (the default) disables the
// sleep and restores pure accounting.
//
// The sleep happens outside the Disk mutex, so requests from different
// goroutines overlap — exactly the behavior of a device that can serve
// queued requests while callers wait. The parallel-speedup benchmark
// (bench.RunParallel) relies on this to measure I/O-overlap wins in real
// wall time; everything else (tests, the paper experiments) leaves the
// latency at zero so the simulation stays instantaneous.
func (d *Disk) SetLatency(perUnit time.Duration) {
	d.mu.Lock()
	d.latency = perUnit
	d.mu.Unlock()
}

// SetFaultPolicy installs (or, with nil, removes) a fault-injection
// policy consulted on every subsequent read and write request.
func (d *Disk) SetFaultPolicy(fp *FaultPolicy) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.fp = fp
}

// FaultPolicy returns the installed policy, or nil.
func (d *Disk) FaultPolicy() *FaultPolicy {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.fp
}

// SetTracer installs (or, with nil, removes) an event tracer notified
// of retries and injected faults on this disk.
func (d *Disk) SetTracer(tr Tracer) {
	d.mu.Lock()
	d.tr = tr
	d.mu.Unlock()
}

func (d *Disk) tracer() Tracer {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.tr
}

// SetCancel installs (or, with nil, removes) a cancellation hook
// consulted before every read and write request. When the hook returns a
// non-nil error the request fails with it instead of touching the device
// — so a canceled join stops issuing I/O within one request, the
// "bounded number of page I/Os" half of the cancellation guarantee.
// Create, Remove and Open never consult the hook: cleanup (sweeping temp
// files after an abort) must always succeed.
func (d *Disk) SetCancel(fn func() error) {
	d.mu.Lock()
	d.cancel = fn
	d.mu.Unlock()
}

// checkCancel runs the installed cancellation hook, if any.
func (d *Disk) checkCancel() error {
	d.mu.Lock()
	fn := d.cancel
	d.mu.Unlock()
	if fn == nil {
		return nil
	}
	return fn()
}

// emitEvent forwards an event to the tracer, if any, and counts
// injected faults on the live registry (retries are metered separately
// in NoteRetry). Called without d.mu held so tracer implementations
// may take their own locks freely.
func (d *Disk) emitEvent(kind, file string) {
	if kind != "retry" {
		d.meterFault(kind)
	}
	if tr := d.tracer(); tr != nil {
		tr.IOEvent(kind, file)
	}
}

// NoteRetry records one retry of a request against the named file after
// a transient fault. The record layers (package recfile) call it so that
// retry counts surface in the per-join Stats deltas and, when a Tracer
// is attached, as retry events in the trace.
func (d *Disk) NoteRetry(file string) {
	d.mu.Lock()
	d.stats.Retries++
	d.mu.Unlock()
	d.meterRetry()
	d.emitEvent("retry", file)
}

// SetBackoff installs (or, with nil, removes) the retry backoff policy
// the record layers consult between attempts via RetrySleep. The
// default nil policy preserves the historical behavior: retries happen
// immediately, with no pause.
func (d *Disk) SetBackoff(b *Backoff) {
	d.mu.Lock()
	d.backoff = b
	d.mu.Unlock()
}

// Backoff returns the installed retry policy, or nil.
func (d *Disk) Backoff() *Backoff {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.backoff
}

// RetrySleep pauses before retry attempt (1-based) of a request against
// the named file, according to the installed backoff policy. The sleep
// is cancellation-aware: it polls the disk's cancel hook (SetCancel)
// and returns its error early, so a canceled join does not serve out a
// backoff it will never use. With no policy installed it only polls the
// hook once — the legacy immediate retry.
func (d *Disk) RetrySleep(file string, attempt int) error {
	b := d.Backoff()
	if b == nil {
		return d.checkCancel()
	}
	return b.Sleep(file, attempt, d.checkCancel)
}

// PT returns the positioning-to-transfer ratio of the cost model.
func (d *Disk) PT() float64 { return d.pt }

// Stats returns a snapshot of the accumulated counters.
func (d *Disk) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// ResetStats zeroes the counters without touching file contents.
func (d *Disk) ResetStats() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats = Stats{}
}

// SimTime converts the accumulated cost units into simulated wall time.
func (d *Disk) SimTime() time.Duration { return d.CostTime(d.Stats().CostUnits) }

// CostTime converts a cost-unit count into simulated wall time.
func (d *Disk) CostTime(units float64) time.Duration {
	return time.Duration(units * float64(d.transfer))
}

// Create makes a new empty file. An empty name generates a unique one.
// Creating over an existing name truncates it.
func (d *Disk) Create(name string) *File {
	d.mu.Lock()
	defer d.mu.Unlock()
	if name == "" {
		d.seq++
		name = fmt.Sprintf("tmp-%d", d.seq)
	}
	f := &File{d: d, name: name}
	d.files[name] = f
	return f
}

// Remove deletes a file and releases its memory. Removing is free of
// charge (directory operations are outside the cost model).
func (d *Disk) Remove(name string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.files, name)
}

// NumFiles returns how many files currently exist on the disk. Tests
// use it to prove a finished join — successful, failed or canceled —
// left no orphan temp files behind.
func (d *Disk) NumFiles() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.files)
}

// FileNames returns the names of all files currently on the disk, in no
// particular order. Diagnostic companion to NumFiles.
func (d *Disk) FileNames() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	names := make([]string, 0, len(d.files))
	for n := range d.files {
		names = append(names, n)
	}
	return names
}

// Open returns an existing file by name, or nil if absent.
func (d *Disk) Open(name string) *File {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.files[name]
}

// pages returns the number of pages needed for n bytes.
func (d *Disk) pages(n int) int64 {
	if n <= 0 {
		return 0
	}
	return int64((n + d.pageSize - 1) / d.pageSize)
}

func (d *Disk) chargeRead(bytes int) {
	p := d.pages(bytes)
	if p == 0 {
		return
	}
	units := d.pt + float64(p)
	d.mu.Lock()
	d.stats.ReadRequests++
	d.stats.PagesRead += p
	d.stats.CostUnits += units
	lat := d.latency
	d.mu.Unlock()
	d.meterRead(p)
	sleepUnits(lat, units)
}

func (d *Disk) chargeWrite(bytes int) {
	p := d.pages(bytes)
	if p == 0 {
		return
	}
	units := d.pt + float64(p)
	d.mu.Lock()
	d.stats.WriteRequests++
	d.stats.PagesWritten += p
	d.stats.CostUnits += units
	lat := d.latency
	d.mu.Unlock()
	d.meterWrite(p)
	sleepUnits(lat, units)
}

// sleepUnits realizes a charged cost as wall-clock latency (SetLatency).
// Called with the Disk mutex released so concurrent requests overlap.
func sleepUnits(perUnit time.Duration, units float64) {
	if perUnit > 0 {
		time.Sleep(time.Duration(units * float64(perUnit)))
	}
}

// chargeLatencySpike bills an extra positioning, the cost of an injected
// latency fault (a seek gone long) against the named file.
func (d *Disk) chargeLatencySpike(file string) {
	d.mu.Lock()
	d.stats.CostUnits += d.pt
	lat := d.latency
	d.mu.Unlock()
	sleepUnits(lat, d.pt)
	d.emitEvent("latency-fault", file)
}

// File is a simulated on-disk file: a byte sequence plus cost accounting.
// Use NewWriter and NewReader for buffered sequential access, or ReadAt
// for positioned reads (each ReadAt is one positioned request).
type File struct {
	d    *Disk
	name string
	data []byte
}

// Name returns the file's name on its Disk.
func (f *File) Name() string { return f.name }

// Disk returns the device the file lives on.
func (f *File) Disk() *Disk { return f.d }

// Len returns the file length in bytes.
func (f *File) Len() int { return len(f.data) }

// Pages returns the file length in pages (rounded up).
func (f *File) Pages() int64 { return f.d.pages(len(f.data)) }

// ErrNegativeOffset is returned by ReadAt for offsets below zero, which
// indicate a caller bug rather than an end-of-file condition.
var ErrNegativeOffset = errors.New("diskio: negative read offset")

// ReadAt copies len(p) bytes starting at off into p and charges one
// positioned read request. It follows the io.ReaderAt contract: a
// negative offset returns ErrNegativeOffset, an offset at or past end of
// file returns (0, io.EOF), and a read cut short by end of file returns
// the bytes copied together with io.EOF.
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, ErrNegativeOffset
	}
	if off >= int64(len(f.data)) {
		return 0, io.EOF
	}
	n := copy(p, f.data[off:])
	f.d.chargeRead(n)
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// Bytes exposes the raw contents for zero-cost inspection in tests.
func (f *File) Bytes() []byte { return f.data }

// Writer buffers sequential appends to a File, flushing whole buffers as
// single positioned write requests of contiguous pages. The buffer size
// is what the join algorithms account against their memory budget.
type Writer struct {
	f   *File
	buf []byte
	n   int
}

// NewWriter returns a Writer with a buffer of bufPages pages (minimum 1).
func (f *File) NewWriter(bufPages int) *Writer {
	if bufPages < 1 {
		bufPages = 1
	}
	return &Writer{f: f, buf: make([]byte, bufPages*f.d.pageSize)}
}

// Write appends p, flushing as buffers fill. It returns the number of
// bytes consumed into the buffer; on a transient flush fault the
// consumed bytes stay buffered, so calling Write again with the
// remaining slice (or Flush) retries the same device request.
func (w *Writer) Write(p []byte) (int, error) {
	total := 0
	for len(p) > 0 {
		n := copy(w.buf[w.n:], p)
		w.n += n
		total += n
		p = p[n:]
		if w.n == len(w.buf) {
			if err := w.flush(); err != nil {
				return total, err
			}
		}
	}
	return total, nil
}

func (w *Writer) flush() error {
	if w.n == 0 {
		return nil
	}
	d := w.f.d
	if err := d.checkCancel(); err != nil {
		// The buffer stays intact, but a canceled join never retries:
		// the context error propagates out of the record layers.
		return err
	}
	if fp := d.FaultPolicy(); fp != nil {
		act, arg := fp.onWrite(w.n)
		switch act {
		case writeTransient:
			// Nothing persisted; the buffer is intact for a retry.
			return &FaultError{Op: "write", File: w.f.name, Transient: true}
		case writeTorn:
			// Persist a prefix and report success — the silent partial
			// write the checksummed frame format exists to catch.
			w.f.data = append(w.f.data, w.buf[:arg]...)
			d.chargeWrite(arg)
			w.n = 0
			d.emitEvent("torn-write", w.f.name)
			return nil
		case writeFlip:
			start := len(w.f.data)
			w.f.data = append(w.f.data, w.buf[:w.n]...)
			w.f.data[start+arg/8] ^= 1 << (arg % 8)
			d.chargeWrite(w.n)
			w.n = 0
			d.emitEvent("bit-flip", w.f.name)
			return nil
		case writeLatency:
			d.chargeLatencySpike(w.f.name)
		}
	}
	w.f.data = append(w.f.data, w.buf[:w.n]...)
	d.chargeWrite(w.n)
	w.n = 0
	return nil
}

// Flush forces any buffered bytes to disk as one request.
func (w *Writer) Flush() error { return w.flush() }

// Reader scans a File (or a byte range of it) sequentially, fetching
// bufPages pages per positioned read request.
type Reader struct {
	f        *File
	buf      []byte
	lo, hi   int64 // remaining unread range in the file
	pos, end int   // valid window within buf
}

// NewReader returns a sequential Reader over the whole file.
func (f *File) NewReader(bufPages int) *Reader {
	return f.NewRangeReader(bufPages, 0, int64(len(f.data)))
}

// NewRangeReader returns a sequential Reader over file bytes [lo, hi).
func (f *File) NewRangeReader(bufPages int, lo, hi int64) *Reader {
	if bufPages < 1 {
		bufPages = 1
	}
	if hi > int64(len(f.data)) {
		hi = int64(len(f.data))
	}
	if lo > hi {
		lo = hi
	}
	return &Reader{f: f, buf: make([]byte, bufPages*f.d.pageSize), lo: lo, hi: hi}
}

// Read fills p with the next bytes of the range; it returns 0 at the
// end. A transient fault error leaves the unread range untouched, so the
// same Read can be retried.
func (r *Reader) Read(p []byte) (int, error) {
	total := 0
	for len(p) > 0 {
		if r.pos == r.end {
			ok, err := r.fill()
			if err != nil {
				return total, err
			}
			if !ok {
				break
			}
		}
		n := copy(p, r.buf[r.pos:r.end])
		r.pos += n
		total += n
		p = p[n:]
	}
	return total, nil
}

// ReadFull fills p entirely; ok is false at a clean end of range. A
// short read (range ends mid-record) also reports ok == false with a nil
// error — record framing above decides whether that is corruption.
func (r *Reader) ReadFull(p []byte) (bool, error) {
	n, err := r.Read(p)
	if err != nil {
		return false, err
	}
	return n == len(p), nil
}

func (r *Reader) fill() (bool, error) {
	if r.lo >= r.hi {
		return false, nil
	}
	if err := r.f.d.checkCancel(); err != nil {
		return false, err
	}
	if fp := r.f.d.FaultPolicy(); fp != nil {
		switch fp.onRead() {
		case readTransient:
			return false, &FaultError{Op: "read", File: r.f.name, Transient: true}
		case readLatency:
			r.f.d.chargeLatencySpike(r.f.name)
		}
	}
	want := int64(len(r.buf))
	if want > r.hi-r.lo {
		want = r.hi - r.lo
	}
	n := copy(r.buf[:want], r.f.data[r.lo:r.hi])
	r.f.d.chargeRead(n)
	r.lo += int64(n)
	r.pos, r.end = 0, n
	return n > 0, nil
}

// Remaining returns how many bytes are left to read (buffered included).
func (r *Reader) Remaining() int64 { return (r.hi - r.lo) + int64(r.end-r.pos) }
