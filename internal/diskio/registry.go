// Temp-file lifecycle. Every intermediate file a join creates —
// partitions, level files, sort runs, result spools — must be removed
// when the join finishes, whether it finishes by success, by error or by
// cancellation. Scattered defers almost achieve that, but "almost" is
// exactly the failure mode resource governance exists to close: a file
// leaked per aborted join is a disk slowly filling under production
// traffic. A Registry makes the guarantee structural: joins create temp
// files only through their registry and sweep it once on the way out.
package diskio

import "sync"

// Registry tracks the temporary files created on behalf of one join.
// Create registers, Remove unregisters and deletes, and Sweep deletes
// whatever is still registered — the single cleanup point a join defers
// so that success, error and cancellation paths all converge on zero
// files left behind. Methods are safe for concurrent use (parallel PBSM
// workers share their join's registry).
type Registry struct {
	d    *Disk
	mu   sync.Mutex
	live map[string]struct{}
}

// NewRegistry returns an empty registry for temp files on d.
func (d *Disk) NewRegistry() *Registry {
	return &Registry{d: d, live: make(map[string]struct{})}
}

// Disk returns the device the registry creates files on.
func (r *Registry) Disk() *Disk { return r.d }

// Create makes a new uniquely-named temp file and registers it.
func (r *Registry) Create() *File {
	f := r.d.Create("")
	r.mu.Lock()
	r.live[f.Name()] = struct{}{}
	r.mu.Unlock()
	return f
}

// Remove deletes a file and unregisters it. Nil files are ignored, so
// error paths can call it unconditionally. Removal never consults the
// cancellation hook: cleanup must succeed even mid-abort.
func (r *Registry) Remove(f *File) {
	if f == nil {
		return
	}
	r.mu.Lock()
	delete(r.live, f.Name())
	r.mu.Unlock()
	r.d.Remove(f.Name())
}

// Adopt registers an existing file (created elsewhere, e.g. handed over
// by a nested sort) so Sweep covers it.
func (r *Registry) Adopt(f *File) {
	if f == nil {
		return
	}
	r.mu.Lock()
	r.live[f.Name()] = struct{}{}
	r.mu.Unlock()
}

// Forget unregisters a file without deleting it: ownership transfers to
// the caller (a sort returning its output file into the parent join's
// registry).
func (r *Registry) Forget(f *File) {
	if f == nil {
		return
	}
	r.mu.Lock()
	delete(r.live, f.Name())
	r.mu.Unlock()
}

// Live returns how many registered files have not been removed yet.
func (r *Registry) Live() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.live)
}

// Sweep removes every still-registered file and returns how many it
// removed. Idempotent; a join defers it once so that every exit path —
// success, structured failure, cancellation, even a recovered panic —
// leaves zero temp files on the disk.
func (r *Registry) Sweep() int {
	r.mu.Lock()
	names := make([]string, 0, len(r.live))
	for n := range r.live {
		names = append(names, n)
	}
	r.live = make(map[string]struct{})
	r.mu.Unlock()
	for _, n := range names {
		r.d.Remove(n)
	}
	return len(names)
}
