package diskio

import (
	"bytes"
	"testing"
	"time"
)

// TestFaultScheduleDeterministic pins the core property the chaos suite
// builds on: a seed fully determines the fault schedule.
func TestFaultScheduleDeterministic(t *testing.T) {
	run := func() FaultStats {
		d := NewDisk(64, 5, time.Millisecond)
		d.SetFaultPolicy(NewFaultPolicy(FaultConfig{
			Seed:               42,
			TransientReadRate:  0.2,
			TransientWriteRate: 0.2,
			TornWriteRate:      0.1,
			BitFlipRate:        0.1,
			LatencyRate:        0.1,
		}))
		f := d.Create("a")
		w := f.NewWriter(1)
		payload := make([]byte, 64)
		for i := 0; i < 200; i++ {
			for {
				if _, err := w.Write(payload); err == nil {
					break
				}
			}
		}
		for w.Flush() != nil {
		}
		r := f.NewReader(1)
		buf := make([]byte, 64)
		for {
			ok, err := r.ReadFull(buf)
			if err != nil {
				continue // transient; retry
			}
			if !ok {
				break
			}
		}
		return d.FaultPolicy().Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed produced different schedules:\n%+v\n%+v", a, b)
	}
	if a.Total() == 0 {
		t.Fatal("schedule injected no faults at these rates; test is vacuous")
	}
}

// TestTransientWriteRetryable verifies that a transient write fault
// leaves the buffer intact so re-issuing the request succeeds, and that
// the burst cap bounds consecutive failures.
func TestTransientWriteRetryable(t *testing.T) {
	d := NewDisk(64, 5, time.Millisecond)
	d.SetFaultPolicy(NewFaultPolicy(FaultConfig{Seed: 1, TransientWriteRate: 1.0, MaxBurst: 2}))
	f := d.Create("a")
	w := f.NewWriter(1)
	payload := []byte("0123456789abcdef0123456789abcdef") // half a page: no flush inside Write
	if _, err := w.Write(payload); err != nil {
		t.Fatalf("buffered write must not fault: %v", err)
	}
	fails := 0
	for {
		err := w.Flush()
		if err == nil {
			break
		}
		if !IsTransient(err) {
			t.Fatalf("expected transient fault, got %v", err)
		}
		fails++
		if fails > 2 {
			t.Fatalf("burst cap 2 exceeded: %d consecutive failures", fails)
		}
	}
	if fails == 0 {
		t.Fatal("rate 1.0 must fault at least once")
	}
	if !bytes.Equal(f.Bytes(), payload) {
		t.Fatal("retried flush lost or corrupted data")
	}
	if st := d.FaultPolicy().Stats(); st.TransientWrites != int64(fails) {
		t.Fatalf("TransientWrites = %d, want %d", st.TransientWrites, fails)
	}
}

// TestTransientReadRetryable verifies the read-side mirror: the unread
// range survives a transient fault.
func TestTransientReadRetryable(t *testing.T) {
	d := NewDisk(64, 5, time.Millisecond)
	f := d.Create("a")
	w := f.NewWriter(1)
	payload := make([]byte, 256)
	for i := range payload {
		payload[i] = byte(i)
	}
	w.Write(payload)
	w.Flush()

	d.SetFaultPolicy(NewFaultPolicy(FaultConfig{Seed: 7, TransientReadRate: 1.0, MaxBurst: 2}))
	r := f.NewReader(1)
	got := make([]byte, 256)
	n, fails := 0, 0
	for n < len(got) {
		m, err := r.Read(got[n:])
		n += m
		if err != nil {
			if !IsTransient(err) {
				t.Fatalf("expected transient fault, got %v", err)
			}
			fails++
			if fails > 20 {
				t.Fatal("reads never succeed; burst cap broken")
			}
		}
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("retried reads returned wrong data")
	}
	if fails == 0 {
		t.Fatal("rate 1.0 must fault at least once")
	}
}

// TestTornWriteSilentPrefix verifies that a torn write persists a strict
// prefix and reports success — detection belongs to the layer above.
func TestTornWriteSilentPrefix(t *testing.T) {
	d := NewDisk(64, 5, time.Millisecond)
	d.SetFaultPolicy(NewFaultPolicy(FaultConfig{Seed: 3, TornWriteRate: 1.0}))
	f := d.Create("a")
	w := f.NewWriter(1)
	payload := make([]byte, 64)
	for i := range payload {
		payload[i] = 0xAB
	}
	if _, err := w.Write(payload); err != nil {
		t.Fatalf("torn write must report success, got %v", err)
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("flush after torn write: %v", err)
	}
	if f.Len() == 0 || f.Len() >= len(payload) {
		t.Fatalf("torn write persisted %d bytes, want a strict non-empty prefix of %d", f.Len(), len(payload))
	}
	if !bytes.Equal(f.Bytes(), payload[:f.Len()]) {
		t.Fatal("torn write must persist a prefix, not scrambled bytes")
	}
	if st := d.FaultPolicy().Stats(); st.TornWrites == 0 {
		t.Fatal("torn write not counted")
	}
}

// TestBitFlipSilentCorruption verifies that a bit flip keeps the length
// and flips exactly one bit.
func TestBitFlipSilentCorruption(t *testing.T) {
	d := NewDisk(64, 5, time.Millisecond)
	d.SetFaultPolicy(NewFaultPolicy(FaultConfig{Seed: 5, BitFlipRate: 1.0}))
	f := d.Create("a")
	w := f.NewWriter(1)
	payload := make([]byte, 64)
	if _, err := w.Write(payload); err != nil {
		t.Fatalf("bit-flip write must report success, got %v", err)
	}
	w.Flush()
	if f.Len() != len(payload) {
		t.Fatalf("bit flip changed length: %d", f.Len())
	}
	flipped := 0
	for i, b := range f.Bytes() {
		for bit := 0; bit < 8; bit++ {
			if b&(1<<bit) != payload[i]&(1<<bit) {
				flipped++
			}
		}
	}
	if flipped != 1 {
		t.Fatalf("flipped %d bits, want exactly 1", flipped)
	}
}

// TestLatencySpikeChargesExtraPositioning verifies the latency fault is
// purely a cost-model event.
func TestLatencySpikeChargesExtraPositioning(t *testing.T) {
	d := NewDisk(100, 20, time.Millisecond)
	d.SetFaultPolicy(NewFaultPolicy(FaultConfig{Seed: 9, LatencyRate: 1.0}))
	f := d.Create("a")
	w := f.NewWriter(1)
	w.Write(make([]byte, 100))
	if err := w.Flush(); err != nil {
		t.Fatalf("latency spike must not fail the request: %v", err)
	}
	st := d.Stats()
	if want := 20.0 + (20.0 + 1.0); st.CostUnits != want { // extra PT + normal request
		t.Fatalf("CostUnits = %g, want %g", st.CostUnits, want)
	}
	if !bytes.Equal(f.Bytes(), make([]byte, 100)) {
		t.Fatal("latency spike corrupted data")
	}
}

// TestDisableFreezesPolicy verifies Disable stops further injection.
func TestDisableFreezesPolicy(t *testing.T) {
	d := NewDisk(64, 5, time.Millisecond)
	fp := NewFaultPolicy(FaultConfig{Seed: 11, TransientWriteRate: 1.0})
	d.SetFaultPolicy(fp)
	fp.Disable()
	f := d.Create("a")
	w := f.NewWriter(1)
	w.Write(make([]byte, 64))
	if err := w.Flush(); err != nil {
		t.Fatalf("disabled policy must not inject: %v", err)
	}
	if fp.Stats().Total() != 0 {
		t.Fatal("disabled policy counted faults")
	}
}
