// Fault injection for the simulated disk. A FaultPolicy is a seeded,
// deterministic source of storage faults that a Disk consults on every
// buffered read and write request:
//
//   - transient read/write errors — the request fails with a retryable
//     FaultError; the device state is untouched, so re-issuing the same
//     request can succeed. Bursts are bounded (MaxBurst), so a bounded
//     retry loop always clears them.
//   - torn writes — only a prefix of the request's bytes is persisted,
//     and the request *reports success*: the classic silent partial
//     write. Detection is the job of the checksummed frame format of
//     package recfile.
//   - bit flips — the request persists all bytes but one bit is
//     inverted, again silently. Detected by per-frame CRCs.
//   - latency spikes — the request succeeds but is charged an extra
//     positioning, modelling a seek gone long.
//
// Determinism: with a single goroutine issuing I/O, a given seed yields
// the same fault schedule on every run. Concurrent readers serialize on
// the policy's mutex, so the fault *set* stays seed-determined even when
// interleaving does not.
package diskio

import (
	"fmt"
	"math/rand"
	"sync"
)

// FaultError is the error returned for injected transient faults and for
// invalid positioned-read requests.
type FaultError struct {
	Op        string // "read" or "write"
	File      string // simulated file name
	Transient bool   // true when a retry of the same request may succeed
}

// Error implements error.
func (e *FaultError) Error() string {
	kind := "permanent"
	if e.Transient {
		kind = "transient"
	}
	return fmt.Sprintf("diskio: %s %s fault on %s", kind, e.Op, e.File)
}

// FileName reports the file the fault hit (used by joinerr.Wrap).
func (e *FaultError) FileName() string { return e.File }

// IsTransient reports whether err is (or wraps) a transient fault, i.e.
// whether re-issuing the failed request is worthwhile.
func IsTransient(err error) bool {
	for err != nil {
		if fe, ok := err.(*FaultError); ok {
			return fe.Transient
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// FaultConfig parameterizes a FaultPolicy. All rates are probabilities
// in [0, 1] evaluated independently per request.
type FaultConfig struct {
	// Seed drives the deterministic fault schedule.
	Seed int64
	// TransientReadRate / TransientWriteRate inject retryable errors.
	TransientReadRate  float64
	TransientWriteRate float64
	// TornWriteRate silently persists only a prefix of a write request.
	TornWriteRate float64
	// BitFlipRate silently inverts one bit of a write request.
	BitFlipRate float64
	// LatencyRate charges an extra positioning on a request.
	LatencyRate float64
	// MaxBurst bounds consecutive transient faults so that a bounded
	// retry loop always eventually succeeds. Values < 1 select 2.
	MaxBurst int
}

// FaultStats counts the faults a policy injected.
type FaultStats struct {
	TransientReads  int64
	TransientWrites int64
	TornWrites      int64
	BitFlips        int64
	LatencySpikes   int64
}

// Total sums all injected faults.
func (s FaultStats) Total() int64 {
	return s.TransientReads + s.TransientWrites + s.TornWrites + s.BitFlips + s.LatencySpikes
}

// FaultPolicy decides, per I/O request, whether to inject a fault. Safe
// for concurrent use.
type FaultPolicy struct {
	mu     sync.Mutex
	rng    *rand.Rand
	cfg    FaultConfig
	burst  int // consecutive transient faults injected
	stats  FaultStats
	frozen bool
}

// NewFaultPolicy creates a policy with the given configuration.
func NewFaultPolicy(cfg FaultConfig) *FaultPolicy {
	if cfg.MaxBurst < 1 {
		cfg.MaxBurst = 2
	}
	return &FaultPolicy{rng: rand.New(rand.NewSource(cfg.Seed)), cfg: cfg}
}

// Stats returns a snapshot of the injected-fault counters.
func (p *FaultPolicy) Stats() FaultStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Disable stops all further injection (used by tests to re-read state
// cleanly after a fault schedule ran).
func (p *FaultPolicy) Disable() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.frozen = true
}

// writeAction is the decision for one write request.
type writeAction int

const (
	writeOK writeAction = iota
	writeTransient
	writeTorn
	writeFlip
	writeLatency
)

// onWrite decides the fate of a write request of n bytes. For writeTorn
// it also returns how many bytes to keep (1 ≤ keep < n when n > 1).
func (p *FaultPolicy) onWrite(n int) (writeAction, int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.frozen {
		return writeOK, 0
	}
	r := p.rng.Float64()
	if r < p.cfg.TransientWriteRate && p.burst < p.cfg.MaxBurst {
		p.burst++
		p.stats.TransientWrites++
		return writeTransient, 0
	}
	p.burst = 0
	r = p.rng.Float64()
	if r < p.cfg.TornWriteRate && n > 1 {
		p.stats.TornWrites++
		keep := 1 + p.rng.Intn(n-1)
		return writeTorn, keep
	}
	if r < p.cfg.TornWriteRate+p.cfg.BitFlipRate {
		p.stats.BitFlips++
		return writeFlip, p.rng.Intn(n * 8)
	}
	if r < p.cfg.TornWriteRate+p.cfg.BitFlipRate+p.cfg.LatencyRate {
		p.stats.LatencySpikes++
		return writeLatency, 0
	}
	return writeOK, 0
}

// readAction is the decision for one read request.
type readAction int

const (
	readOK readAction = iota
	readTransient
	readLatency
)

// onRead decides the fate of a read request.
func (p *FaultPolicy) onRead() readAction {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.frozen {
		return readOK
	}
	r := p.rng.Float64()
	if r < p.cfg.TransientReadRate && p.burst < p.cfg.MaxBurst {
		p.burst++
		p.stats.TransientReads++
		return readTransient
	}
	p.burst = 0
	if r < p.cfg.TransientReadRate+p.cfg.LatencyRate {
		p.stats.LatencySpikes++
		return readLatency
	}
	return readOK
}
