package diskio

import "spatialjoin/internal/metrics"

// Metric names owned by package diskio. Process-lifetime totals across
// every disk a registry is attached to; per-join deltas remain the job
// of Stats / trace.IOStats, and chaos reconciles the two exactly.
const (
	// metReadRequests counts positioned read requests.
	metReadRequests = "diskio.read.requests"
	// metWriteRequests counts positioned write requests.
	metWriteRequests = "diskio.write.requests"
	// metReadBytes counts bytes transferred in (whole pages).
	metReadBytes = "diskio.read.bytes"
	// metWriteBytes counts bytes transferred out (whole pages).
	metWriteBytes = "diskio.write.bytes"
	// metRetries counts request retries after transient faults (the
	// recfile layer reports them via NoteRetry).
	metRetries = "diskio.retries"
	// metFaults counts injected storage faults by kind label:
	// torn-write, bit-flip, latency-fault.
	metFaults = "diskio.faults.injected"
)

// diskMetrics is the handle set one SetMetrics call resolves; requests
// load it with a single atomic pointer read.
type diskMetrics struct {
	reads      *metrics.Counter
	writes     *metrics.Counter
	readBytes  *metrics.Counter
	writeBytes *metrics.Counter
	retries    *metrics.Counter
	faults     *metrics.CounterVec
}

// SetMetrics attaches (or, with nil, detaches) a live-metrics registry.
// Attaching is idempotent — handles resolve to the same process-wide
// instruments — so a per-join attach to a shared disk is safe.
func (d *Disk) SetMetrics(r *metrics.Registry) {
	if r == nil {
		d.met.Store(nil)
		return
	}
	d.met.Store(&diskMetrics{
		reads:      r.Counter(metReadRequests),
		writes:     r.Counter(metWriteRequests),
		readBytes:  r.Counter(metReadBytes),
		writeBytes: r.Counter(metWriteBytes),
		retries:    r.Counter(metRetries),
		faults:     r.CounterVec(metFaults, "kind"),
	})
}

// meterRead records one read request of p pages on the live registry.
func (d *Disk) meterRead(p int64) {
	if dm := d.met.Load(); dm != nil {
		dm.reads.Inc()
		dm.readBytes.Add(p * int64(d.pageSize))
	}
}

// meterWrite records one write request of p pages on the live registry.
func (d *Disk) meterWrite(p int64) {
	if dm := d.met.Load(); dm != nil {
		dm.writes.Inc()
		dm.writeBytes.Add(p * int64(d.pageSize))
	}
}

// meterRetry records one transient-fault retry on the live registry.
func (d *Disk) meterRetry() {
	if dm := d.met.Load(); dm != nil {
		dm.retries.Inc()
	}
}

// meterFault records one injected fault of the given kind on the live
// registry.
func (d *Disk) meterFault(kind string) {
	if dm := d.met.Load(); dm != nil {
		dm.faults.With(kind).Inc()
	}
}
