package geom

import "testing"

var sinkBool bool
var sinkPoint Point

// Intersects and RefPoint sit on the innermost loops of every join; the
// paper budgets "at most six comparisons" for on-line duplicate
// detection, and these benchmarks keep that cost honest.
func BenchmarkIntersects(b *testing.B) {
	r := NewRect(0.1, 0.1, 0.5, 0.5)
	s := NewRect(0.4, 0.4, 0.9, 0.9)
	for i := 0; i < b.N; i++ {
		sinkBool = r.Intersects(s)
	}
}

func BenchmarkRefPoint(b *testing.B) {
	r := NewRect(0.1, 0.1, 0.5, 0.5)
	s := NewRect(0.4, 0.4, 0.9, 0.9)
	for i := 0; i < b.N; i++ {
		sinkPoint = RefPoint(r, s)
	}
}

func BenchmarkEncodeDecodeKPE(b *testing.B) {
	k := KPE{ID: 42, Rect: NewRect(0.1, 0.2, 0.3, 0.4)}
	var buf [KPESize]byte
	for i := 0; i < b.N; i++ {
		EncodeKPE(buf[:], k)
		k = DecodeKPE(buf[:])
	}
}
