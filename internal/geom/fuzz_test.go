package geom

import "testing"

// Fuzz targets for the geometric invariants the join algorithms build
// on. The seed corpus runs as part of the normal test suite; `go test
// -fuzz=FuzzRefPoint ./internal/geom` explores further.

func FuzzRefPoint(f *testing.F) {
	f.Add(0.1, 0.1, 0.5, 0.5, 0.3, 0.3, 0.9, 0.9)
	f.Add(0.0, 0.0, 1.0, 1.0, 0.5, 0.5, 0.5, 0.5)
	f.Add(0.2, 0.2, 0.2, 0.2, 0.2, 0.2, 0.2, 0.2)
	f.Fuzz(func(t *testing.T, ax1, ay1, ax2, ay2, bx1, by1, bx2, by2 float64) {
		a := NewRect(ax1, ay1, ax2, ay2)
		b := NewRect(bx1, by1, bx2, by2)
		if !a.Valid() || !b.Valid() {
			t.Skip()
		}
		if !a.Intersects(b) {
			return
		}
		x := RefPoint(a, b)
		if !a.Contains(x) || !b.Contains(x) {
			t.Fatalf("reference point %v escapes %v ∩ %v", x, a, b)
		}
		if x != RefPoint(b, a) {
			t.Fatalf("reference point not symmetric for %v, %v", a, b)
		}
	})
}

// FuzzDecodeKPE feeds arbitrary byte slices to the decoder: any input of
// at least KPESize bytes must decode without panicking and re-encode to
// the identical bytes (the decoder has no hidden normalization that
// corruption could exploit).
func FuzzDecodeKPE(f *testing.F) {
	f.Add(make([]byte, KPESize))
	flip := make([]byte, KPESize)
	for i := range flip {
		flip[i] = 0xFF
	}
	f.Add(flip)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < KPESize {
			t.Skip()
		}
		data = data[:KPESize]
		k := DecodeKPE(data)
		var buf [KPESize]byte
		EncodeKPE(buf[:], k)
		for i := range buf {
			if buf[i] != data[i] {
				t.Fatalf("decode/encode not byte-identical at %d for corrupt input", i)
			}
		}
	})
}

func FuzzKPECodec(f *testing.F) {
	f.Add(uint64(0), 0.0, 0.0, 1.0, 1.0)
	f.Add(uint64(1<<63), 0.25, 0.5, 0.75, 1.0)
	f.Fuzz(func(t *testing.T, id uint64, x1, y1, x2, y2 float64) {
		k := KPE{ID: id, Rect: Rect{x1, y1, x2, y2}}
		var buf [KPESize]byte
		EncodeKPE(buf[:], k)
		got := DecodeKPE(buf[:])
		// NaN != NaN, so compare bit-level via re-encoding.
		var buf2 [KPESize]byte
		EncodeKPE(buf2[:], got)
		if buf != buf2 {
			t.Fatalf("codec not a bijection for %v", k)
		}
	})
}
