package geom

import (
	"encoding/binary"
	"fmt"
	"math"
)

// KPE is a key-pointer element: the unit of data flowing through the
// filter step of a spatial join. It pairs an object identifier (standing
// in for a pointer to the full tuple) with the object's MBR (§2 of the
// paper).
type KPE struct {
	ID   uint64
	Rect Rect
	// Class is the copy's secondary class under two-layer space-oriented
	// partitioning (TLSP, internal/pbsm): two bits recording whether the
	// tile a replicated copy was written to also contains the rectangle's
	// reference corner (upper-left, the RefPoint corner of §3.2.1), per
	// axis. It is a property of a COPY, not of the object — the
	// partitioner assigns it per destination — and it travels with the
	// copy through partition files and shard frames. Zero outside TLSP
	// joins.
	Class uint8
}

// KPESize is the serialized size of a KPE in bytes: an 8-byte identifier,
// four 8-byte float64 coordinates, and one class byte. Memory budgets and
// PBSM's partition-count formula (1) are expressed in these units.
const KPESize = 8 + 4*8 + 1

// EncodeKPE serializes k into buf, which must be at least KPESize bytes,
// and returns the number of bytes written.
func EncodeKPE(buf []byte, k KPE) int {
	_ = buf[KPESize-1] // bounds check hint
	binary.LittleEndian.PutUint64(buf[0:], k.ID)
	binary.LittleEndian.PutUint64(buf[8:], math.Float64bits(k.Rect.XL))
	binary.LittleEndian.PutUint64(buf[16:], math.Float64bits(k.Rect.YL))
	binary.LittleEndian.PutUint64(buf[24:], math.Float64bits(k.Rect.XH))
	binary.LittleEndian.PutUint64(buf[32:], math.Float64bits(k.Rect.YH))
	buf[40] = k.Class
	return KPESize
}

// DecodeKPE deserializes a KPE from buf, which must hold at least KPESize
// bytes.
func DecodeKPE(buf []byte) KPE {
	_ = buf[KPESize-1]
	return KPE{
		ID: binary.LittleEndian.Uint64(buf[0:]),
		Rect: Rect{
			XL: math.Float64frombits(binary.LittleEndian.Uint64(buf[8:])),
			YL: math.Float64frombits(binary.LittleEndian.Uint64(buf[16:])),
			XH: math.Float64frombits(binary.LittleEndian.Uint64(buf[24:])),
			YH: math.Float64frombits(binary.LittleEndian.Uint64(buf[32:])),
		},
		Class: buf[40],
	}
}

// String formats k for debugging.
func (k KPE) String() string { return fmt.Sprintf("KPE{%d %s}", k.ID, k.Rect) }

// Pair identifies one result tuple of the filter step: the IDs of an
// intersecting (r, s) pair with r from relation R and s from relation S.
type Pair struct {
	R, S uint64
}

// PairSize is the serialized size of a Pair in bytes. The original PBSM
// duplicate-removal phase sorts records of this size.
const PairSize = 16

// EncodePair serializes p into buf (at least PairSize bytes).
func EncodePair(buf []byte, p Pair) int {
	_ = buf[PairSize-1]
	binary.LittleEndian.PutUint64(buf[0:], p.R)
	binary.LittleEndian.PutUint64(buf[8:], p.S)
	return PairSize
}

// DecodePair deserializes a Pair from buf (at least PairSize bytes).
func DecodePair(buf []byte) Pair {
	_ = buf[PairSize-1]
	return Pair{
		R: binary.LittleEndian.Uint64(buf[0:]),
		S: binary.LittleEndian.Uint64(buf[8:]),
	}
}

// Less orders pairs lexicographically by (R, S), the order used by the
// original PBSM duplicate-removal sort.
func (p Pair) Less(q Pair) bool {
	if p.R != q.R {
		return p.R < q.R
	}
	return p.S < q.S
}
