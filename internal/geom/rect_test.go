package geom

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// genRect draws a random rectangle inside the unit square.
func genRect(rng *rand.Rand) Rect {
	x1, y1 := rng.Float64(), rng.Float64()
	x2, y2 := rng.Float64(), rng.Float64()
	return NewRect(x1, y1, x2, y2)
}

// quickCfg makes testing/quick generate unit-square rectangles.
func quickCfg() *quick.Config {
	return &quick.Config{
		MaxCount: 2000,
		Values: func(vals []reflect.Value, rng *rand.Rand) {
			for i := range vals {
				vals[i] = reflect.ValueOf(genRect(rng))
			}
		},
	}
}

func TestNewRectNormalizesCorners(t *testing.T) {
	r := NewRect(0.9, 0.8, 0.1, 0.2)
	want := Rect{0.1, 0.2, 0.9, 0.8}
	if r != want {
		t.Fatalf("got %v, want %v", r, want)
	}
	if !r.Valid() {
		t.Fatal("normalized rect must be valid")
	}
}

func TestValidRejectsBadRects(t *testing.T) {
	cases := []Rect{
		{0.5, 0, 0.1, 1},       // xl > xh
		{0, 0.5, 1, 0.1},       // yl > yh
		{math.NaN(), 0, 1, 1},  // NaN
		{0, 0, math.Inf(1), 1}, // Inf
	}
	for _, r := range cases {
		if r.Valid() {
			t.Errorf("rect %v should be invalid", r)
		}
	}
	if !(Rect{0.3, 0.3, 0.3, 0.3}).Valid() {
		t.Error("degenerate point rect should be valid")
	}
}

func TestIntersectsBasics(t *testing.T) {
	a := Rect{0.1, 0.1, 0.5, 0.5}
	cases := []struct {
		b    Rect
		want bool
	}{
		{Rect{0.4, 0.4, 0.9, 0.9}, true},  // overlap
		{Rect{0.5, 0.1, 0.9, 0.5}, true},  // shared edge
		{Rect{0.5, 0.5, 0.9, 0.9}, true},  // shared corner
		{Rect{0.6, 0.6, 0.9, 0.9}, false}, // disjoint
		{Rect{0.2, 0.2, 0.3, 0.3}, true},  // containment
		{Rect{0.1, 0.6, 0.5, 0.9}, false}, // y-disjoint only
	}
	for _, c := range cases {
		if got := a.Intersects(c.b); got != c.want {
			t.Errorf("%v.Intersects(%v) = %v, want %v", a, c.b, got, c.want)
		}
	}
}

func TestIntersectsSymmetric(t *testing.T) {
	f := func(a, b Rect) bool { return a.Intersects(b) == b.Intersects(a) }
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestIntersectionConsistentWithPredicate(t *testing.T) {
	f := func(a, b Rect) bool {
		in, ok := a.Intersection(b)
		if ok != a.Intersects(b) {
			return false
		}
		if !ok {
			return true
		}
		// The intersection must be valid and contained in both.
		return in.Valid() && a.ContainsRect(in) && b.ContainsRect(in)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestUnionContainsBoth(t *testing.T) {
	f := func(a, b Rect) bool {
		u := a.Union(b)
		return u.ContainsRect(a) && u.ContainsRect(b)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestRefPointInsideIntersection(t *testing.T) {
	f := func(a, b Rect) bool {
		if !a.Intersects(b) {
			return true
		}
		x := RefPoint(a, b)
		in, _ := a.Intersection(b)
		return in.Contains(x) && a.Contains(x) && b.Contains(x)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestRefPointSymmetric(t *testing.T) {
	f := func(a, b Rect) bool {
		if !a.Intersects(b) {
			return true
		}
		return RefPoint(a, b) == RefPoint(b, a)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestRefPointDefinition(t *testing.T) {
	a := Rect{0.1, 0.1, 0.6, 0.6}
	b := Rect{0.3, 0.2, 0.9, 0.5}
	x := RefPoint(a, b)
	if x.X != 0.3 || x.Y != 0.5 {
		t.Fatalf("reference point = %v, want (0.3, 0.5)", x)
	}
}

func TestScaleCoverageGrowsQuadratically(t *testing.T) {
	// Away from boundaries, Scale(p) multiplies area by p².
	r := Rect{0.4, 0.4, 0.5, 0.5}
	for _, p := range []float64{1, 2, 3} {
		got := r.Scale(p).Area()
		want := r.Area() * p * p
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("Scale(%v): area %g, want %g", p, got, want)
		}
	}
}

func TestScalePreservesCenterAndClamps(t *testing.T) {
	r := Rect{0.0, 0.0, 0.2, 0.2} // at the corner: clamping kicks in
	s := r.Scale(4)
	if s.XL < 0 || s.YL < 0 || s.XH > 1 || s.YH > 1 {
		t.Fatalf("scaled rect %v escapes the unit square", s)
	}
	inner := Rect{0.45, 0.45, 0.55, 0.55}
	s = inner.Scale(2)
	if c, want := s.Center(), inner.Center(); math.Abs(c.X-want.X) > 1e-12 || math.Abs(c.Y-want.Y) > 1e-12 {
		t.Fatalf("center moved: %v -> %v", want, c)
	}
}

func TestContainsBoundary(t *testing.T) {
	r := Rect{0.2, 0.2, 0.8, 0.8}
	for _, p := range []Point{{0.2, 0.2}, {0.8, 0.8}, {0.2, 0.5}, {0.5, 0.8}} {
		if !r.Contains(p) {
			t.Errorf("boundary point %v must be contained", p)
		}
	}
	if r.Contains(Point{0.81, 0.5}) {
		t.Error("outside point reported contained")
	}
}

func TestAreaWidthHeight(t *testing.T) {
	r := Rect{0.1, 0.2, 0.4, 0.8}
	if w := r.Width(); math.Abs(w-0.3) > 1e-15 {
		t.Errorf("Width = %g", w)
	}
	if h := r.Height(); math.Abs(h-0.6) > 1e-15 {
		t.Errorf("Height = %g", h)
	}
	if a := r.Area(); math.Abs(a-0.18) > 1e-15 {
		t.Errorf("Area = %g", a)
	}
}
