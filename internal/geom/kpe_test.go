package geom

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestKPERoundTrip(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 1000,
		Values: func(vals []reflect.Value, rng *rand.Rand) {
			vals[0] = reflect.ValueOf(KPE{ID: rng.Uint64(), Rect: genRect(rng), Class: uint8(rng.Intn(256))})
		},
	}
	f := func(k KPE) bool {
		var buf [KPESize]byte
		if n := EncodeKPE(buf[:], k); n != KPESize {
			return false
		}
		return DecodeKPE(buf[:]) == k
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPairRoundTrip(t *testing.T) {
	f := func(r, s uint64) bool {
		var buf [PairSize]byte
		p := Pair{R: r, S: s}
		EncodePair(buf[:], p)
		return DecodePair(buf[:]) == p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestPairLessIsStrictWeakOrder(t *testing.T) {
	f := func(a, b, c Pair) bool {
		// Irreflexive and asymmetric.
		if a.Less(a) {
			return false
		}
		if a.Less(b) && b.Less(a) {
			return false
		}
		// Transitive.
		if a.Less(b) && b.Less(c) && !a.Less(c) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestPairLessLexicographic(t *testing.T) {
	if !(Pair{1, 9}).Less(Pair{2, 0}) {
		t.Error("R dominates")
	}
	if !(Pair{1, 2}).Less(Pair{1, 3}) {
		t.Error("S breaks ties")
	}
	if (Pair{1, 3}).Less(Pair{1, 3}) {
		t.Error("equal pairs are not Less")
	}
}

func TestKPESizeMatchesEncoding(t *testing.T) {
	// The memory model (formula (1) of the paper) relies on this size.
	var buf [KPESize]byte
	if n := EncodeKPE(buf[:], KPE{}); n != 41 {
		t.Fatalf("KPESize = %d, want 41", n)
	}
}
