// Package geom provides the planar geometry primitives used throughout the
// spatial-join library: axis-aligned rectangles (minimum bounding
// rectangles, MBRs), points, intersection predicates, and the reference
// points used for on-line duplicate detection (Dittrich & Seeger, ICDE
// 2000, §3.2.1 and §4.3).
//
// All coordinates live in the normalized unit data space [0,1)².
package geom

import (
	"fmt"
	"math"
)

// Point is a location in the data space.
type Point struct {
	X, Y float64
}

// Rect is a rectilinear minimum bounding rectangle represented by its
// lower-left corner (XL, YL) and upper-right corner (XH, YH), following
// the paper's (r.xl, r.yl), (r.xh, r.yh) notation. A Rect is closed on
// all sides: degenerate rectangles (points, horizontal or vertical
// segments) are valid.
type Rect struct {
	XL, YL, XH, YH float64
}

// NewRect builds a rectangle from two corner points given in any order.
func NewRect(x1, y1, x2, y2 float64) Rect {
	if x1 > x2 {
		x1, x2 = x2, x1
	}
	if y1 > y2 {
		y1, y2 = y2, y1
	}
	return Rect{XL: x1, YL: y1, XH: x2, YH: y2}
}

// UnitRect is the whole normalized data space.
var UnitRect = Rect{0, 0, 1, 1}

// Valid reports whether r has non-negative extent and finite coordinates.
func (r Rect) Valid() bool {
	return r.XL <= r.XH && r.YL <= r.YH &&
		!math.IsNaN(r.XL) && !math.IsNaN(r.YL) &&
		!math.IsNaN(r.XH) && !math.IsNaN(r.YH) &&
		!math.IsInf(r.XL, 0) && !math.IsInf(r.YL, 0) &&
		!math.IsInf(r.XH, 0) && !math.IsInf(r.YH, 0)
}

// Width returns the x-extent of r.
func (r Rect) Width() float64 { return r.XH - r.XL }

// Height returns the y-extent of r.
func (r Rect) Height() float64 { return r.YH - r.YL }

// Area returns the area of r.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Center returns the midpoint of r.
func (r Rect) Center() Point { return Point{(r.XL + r.XH) / 2, (r.YL + r.YH) / 2} }

// Intersects reports whether r and s share at least one point.
// Boundaries count: touching rectangles intersect, which matches the
// filter-step semantics of MBR joins (a shared edge is a candidate).
func (r Rect) Intersects(s Rect) bool {
	return r.XL <= s.XH && s.XL <= r.XH && r.YL <= s.YH && s.YL <= r.YH
}

// IntersectsY reports whether the y-ranges of r and s overlap. Plane-sweep
// algorithms use this after establishing x-overlap from sweep order.
func (r Rect) IntersectsY(s Rect) bool {
	return r.YL <= s.YH && s.YL <= r.YH
}

// Intersection returns the common rectangle of r and s. The second result
// is false when they do not intersect.
func (r Rect) Intersection(s Rect) (Rect, bool) {
	if !r.Intersects(s) {
		return Rect{}, false
	}
	return Rect{
		XL: math.Max(r.XL, s.XL),
		YL: math.Max(r.YL, s.YL),
		XH: math.Min(r.XH, s.XH),
		YH: math.Min(r.YH, s.YH),
	}, true
}

// Union returns the smallest rectangle covering both r and s.
func (r Rect) Union(s Rect) Rect {
	return Rect{
		XL: math.Min(r.XL, s.XL),
		YL: math.Min(r.YL, s.YL),
		XH: math.Max(r.XH, s.XH),
		YH: math.Max(r.YH, s.YH),
	}
}

// Contains reports whether p lies inside r, including the boundary.
func (r Rect) Contains(p Point) bool {
	return r.XL <= p.X && p.X <= r.XH && r.YL <= p.Y && p.Y <= r.YH
}

// ContainsRect reports whether s lies fully inside r (boundaries allowed).
func (r Rect) ContainsRect(s Rect) bool {
	return r.XL <= s.XL && s.XH <= r.XH && r.YL <= s.YL && s.YH <= r.YH
}

// Scale grows (p > 1) or shrinks (p < 1) both edges of r by the factor p
// around its center, the transformation the paper uses to derive the
// LA_RR(p)/LA_ST(p) datasets with quadratically growing coverage. The
// result is clamped to the unit data space.
func (r Rect) Scale(p float64) Rect {
	c := r.Center()
	hw := r.Width() / 2 * p
	hh := r.Height() / 2 * p
	out := Rect{XL: c.X - hw, YL: c.Y - hh, XH: c.X + hw, YH: c.Y + hh}
	return out.ClampUnit()
}

// ClampUnit clips r to the unit data space [0,1]².
func (r Rect) ClampUnit() Rect {
	clamp := func(v float64) float64 {
		if v < 0 {
			return 0
		}
		if v > 1 {
			return 1
		}
		return v
	}
	return Rect{clamp(r.XL), clamp(r.YL), clamp(r.XH), clamp(r.YH)}
}

// Expand grows r by eps on every side, the filter-step transformation of
// an epsilon-distance join: expand(a, eps) intersects b exactly when the
// L-infinity distance of a and b is at most eps, a superset of the
// Euclidean-eps pairs that the refinement step then narrows down.
func (r Rect) Expand(eps float64) Rect {
	return Rect{XL: r.XL - eps, YL: r.YL - eps, XH: r.XH + eps, YH: r.YH + eps}
}

// MinDist returns the minimum Euclidean distance between r and s (zero
// when they intersect).
func (r Rect) MinDist(s Rect) float64 {
	dx := math.Max(0, math.Max(r.XL-s.XH, s.XL-r.XH))
	dy := math.Max(0, math.Max(r.YL-s.YH, s.YL-r.YH))
	return math.Hypot(dx, dy)
}

// RefPoint returns the reference point of an intersecting pair (r, s) as
// defined in §3.2.1 of the paper:
//
//	x = (max(r.xl, s.xl), min(r.yh, s.yh))
//
// i.e. the upper-left corner of the intersection rectangle. The reference
// point is symmetric in its arguments and always lies inside both r and s
// when they intersect, so each result pair maps to exactly one partition
// of any disjoint decomposition of the data space.
func RefPoint(r, s Rect) Point {
	return Point{X: math.Max(r.XL, s.XL), Y: math.Min(r.YH, s.YH)}
}

// String formats r as [xl,yl x xh,yh].
func (r Rect) String() string {
	return fmt.Sprintf("[%.6g,%.6g x %.6g,%.6g]", r.XL, r.YL, r.XH, r.YH)
}
