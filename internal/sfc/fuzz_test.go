package sfc

import (
	"testing"

	"spatialjoin/internal/geom"
)

// FuzzLevelAssignments checks the structural invariants of both level
// rules for arbitrary rectangles: the containment cell really covers the
// rectangle, the size level satisfies its defining inequality, and the
// replicated cell set stays within the paper's bound of four.
func FuzzLevelAssignments(f *testing.F) {
	f.Add(0.1, 0.1, 0.2, 0.2)
	f.Add(0.0, 0.0, 1.0, 1.0)
	f.Add(0.49999, 0.49999, 0.50001, 0.50001) // straddles the root split
	f.Add(0.25, 0.25, 0.25, 0.25)             // degenerate on a boundary
	f.Fuzz(func(t *testing.T, x1, y1, x2, y2 float64) {
		r := geom.NewRect(x1, y1, x2, y2).ClampUnit()
		if !r.Valid() {
			t.Skip()
		}
		level, ix, iy := ContainmentLevel(r, MaxLevel)
		if !CellCovers(ix, iy, level, r) {
			t.Fatalf("containment cell (%d,%d)@%d does not cover %v", ix, iy, level, r)
		}
		k := SizeLevel(r, MaxLevel)
		size := CellRect(0, 0, k).Width()
		if r.Width() > size+1e-15 || r.Height() > size+1e-15 {
			t.Fatalf("size level %d violates the defining inequality for %v", k, r)
		}
		cells := OverlapCells(r, k, nil)
		if len(cells) == 0 || len(cells) > 4 {
			t.Fatalf("replication bound violated: %d cells for %v at level %d",
				len(cells), r, k)
		}
	})
}

// FuzzCurveRoundTrip checks both curves stay bijective on arbitrary
// coordinates at every level.
func FuzzCurveRoundTrip(f *testing.F) {
	f.Add(uint32(0), uint32(0), 1)
	f.Add(uint32(1023), uint32(511), 10)
	f.Fuzz(func(t *testing.T, ix, iy uint32, level int) {
		if level < 1 || level > 20 {
			t.Skip()
		}
		mask := uint32(1)<<uint(level) - 1
		ix &= mask
		iy &= mask
		if gx, gy := ZDecode(Peano.Code(ix, iy, level), level); gx != ix || gy != iy {
			t.Fatalf("peano roundtrip failed for (%d,%d)@%d", ix, iy, level)
		}
		if gx, gy := HilbertXY(Hilbert.Code(ix, iy, level), level); gx != ix || gy != iy {
			t.Fatalf("hilbert roundtrip failed for (%d,%d)@%d", ix, iy, level)
		}
	})
}
