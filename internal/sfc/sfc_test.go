package sfc

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"spatialjoin/internal/geom"
)

func TestZEncodeDecodeRoundTrip(t *testing.T) {
	f := func(ix, iy uint32) bool {
		ix &= (1 << 20) - 1
		iy &= (1 << 20) - 1
		code := Peano.Code(ix, iy, 20)
		gx, gy := ZDecode(code, 20)
		return gx == ix && gy == iy
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestHilbertRoundTrip(t *testing.T) {
	f := func(ix, iy uint32) bool {
		ix &= (1 << 12) - 1
		iy &= (1 << 12) - 1
		code := Hilbert.Code(ix, iy, 12)
		gx, gy := HilbertXY(code, 12)
		return gx == ix && gy == iy
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Both curves must be bijections onto [0, 4^level).
func TestCurvesAreBijections(t *testing.T) {
	const level = 4
	for _, curve := range []Curve{Peano, Hilbert} {
		seen := make(map[uint64]bool)
		n := uint32(1) << level
		for ix := uint32(0); ix < n; ix++ {
			for iy := uint32(0); iy < n; iy++ {
				c := curve.Code(ix, iy, level)
				if c >= uint64(n)*uint64(n) {
					t.Fatalf("%v code %d out of range", curve, c)
				}
				if seen[c] {
					t.Fatalf("%v code %d duplicated", curve, c)
				}
				seen[c] = true
			}
		}
	}
}

// Hilbert neighbors along the curve must be grid neighbors — the
// continuity property that motivated the original S³J choice.
func TestHilbertContinuity(t *testing.T) {
	const level = 6
	n := uint64(1) << (2 * level)
	px, py := HilbertXY(0, level)
	for d := uint64(1); d < n; d++ {
		x, y := HilbertXY(d, level)
		dx := int64(x) - int64(px)
		dy := int64(y) - int64(py)
		if dx*dx+dy*dy != 1 {
			t.Fatalf("Hilbert discontinuity at d=%d: (%d,%d)->(%d,%d)", d, px, py, x, y)
		}
		px, py = x, y
	}
}

// Codes must be hierarchical: a cell's code is its parent's code with two
// more bits — the property CodeInterval and the synchronized scan rely on.
func TestCodesAreHierarchical(t *testing.T) {
	for _, curve := range []Curve{Peano, Hilbert} {
		f := func(ix, iy uint32) bool {
			const level = 10
			ix &= (1 << level) - 1
			iy &= (1 << level) - 1
			child := curve.Code(ix, iy, level)
			parent := curve.Code(ix>>1, iy>>1, level-1)
			return child>>2 == parent
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
			t.Fatalf("%v: %v", curve, err)
		}
	}
}

func TestCellAtClampsBoundary(t *testing.T) {
	for _, level := range []int{0, 1, 5, 10} {
		n := uint32(1) << uint(level)
		ix, iy := CellAt(geom.Point{X: 1, Y: 1}, level)
		if ix != n-1 || iy != n-1 {
			t.Fatalf("level %d: far corner maps to (%d,%d), want (%d,%d)", level, ix, iy, n-1, n-1)
		}
		ix, iy = CellAt(geom.Point{X: 0, Y: 0}, level)
		if ix != 0 || iy != 0 {
			t.Fatalf("level %d: origin maps to (%d,%d)", level, ix, iy)
		}
		ix, iy = CellAt(geom.Point{X: -0.5, Y: 2}, level)
		if ix != 0 || iy != n-1 {
			t.Fatalf("level %d: outside points must clamp", level)
		}
	}
}

func TestCellAtConsistentWithCellRect(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 2000,
		Values: func(vals []reflect.Value, rng *rand.Rand) {
			vals[0] = reflect.ValueOf(geom.Point{X: rng.Float64(), Y: rng.Float64()})
			vals[1] = reflect.ValueOf(1 + rng.Intn(12))
		},
	}
	f := func(p geom.Point, level int) bool {
		ix, iy := CellAt(p, level)
		return CellRect(ix, iy, level).Contains(p)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestContainmentLevelCovers(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 2000,
		Values: func(vals []reflect.Value, rng *rand.Rand) {
			vals[0] = reflect.ValueOf(randRect(rng))
		},
	}
	f := func(r geom.Rect) bool {
		level, ix, iy := ContainmentLevel(r, MaxLevel)
		if !CellCovers(ix, iy, level, r) {
			return false
		}
		// Maximality: no child cell covers r (unless at the cap).
		if level == MaxLevel {
			return true
		}
		cx, cy := CellAt(geom.Point{X: r.XL, Y: r.YL}, level+1)
		return !CellCovers(cx, cy, level+1, r)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSizeLevelDefinition(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 2000,
		Values: func(vals []reflect.Value, rng *rand.Rand) {
			vals[0] = reflect.ValueOf(randRect(rng))
		},
	}
	f := func(r geom.Rect) bool {
		const maxLevel = 16
		k := SizeLevel(r, maxLevel)
		if k < 0 || k > maxLevel {
			return false
		}
		size := cellSize(k)
		if r.Width() > size || r.Height() > size {
			return false // the defining inequality must hold
		}
		// Maximality (unless capped).
		if k == maxLevel {
			return true
		}
		smaller := cellSize(k + 1)
		return r.Width() > smaller || r.Height() > smaller
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func cellSize(level int) float64 {
	return 1 / float64(uint64(1)<<uint(level))
}

func TestSizeLevelExamplesFromPaper(t *testing.T) {
	// Figure 9: a rectangle with both edges ≤ 2^-2 goes to level 2
	// regardless of whether it straddles cell boundaries.
	r := geom.NewRect(0.24, 0.24, 0.26, 0.26) // straddles the level-1 and level-2 lines
	if l := SizeLevel(r, 10); l != 5 {
		// edges are 0.02 ≤ 2^-5 = 0.03125 but > 2^-6
		t.Fatalf("SizeLevel = %d, want 5", l)
	}
	if l, _, _ := ContainmentLevel(r, 10); l != 1 {
		// The original rule sinks it to level 1: it crosses the 0.25 line.
		t.Fatalf("ContainmentLevel = %d, want 1", l)
	}
}

func TestOverlapCellsAtSizeLevelIsAtMostFour(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 5000,
		Values: func(vals []reflect.Value, rng *rand.Rand) {
			vals[0] = reflect.ValueOf(randRect(rng))
		},
	}
	f := func(r geom.Rect) bool {
		l := SizeLevel(r, 16)
		cells := OverlapCells(r, l, nil)
		if len(cells) == 0 || len(cells) > 4 {
			return false
		}
		// Every returned cell must intersect r.
		for _, c := range cells {
			if !CellRect(c[0], c[1], l).Intersects(r) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestOverlapCellsComplete(t *testing.T) {
	// Brute-force comparison on a coarse grid.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 500; trial++ {
		r := randRect(rng)
		level := 1 + rng.Intn(5)
		got := OverlapCells(r, level, nil)
		gotSet := make(map[[2]uint32]bool, len(got))
		for _, c := range got {
			gotSet[c] = true
		}
		n := uint32(1) << uint(level)
		for ix := uint32(0); ix < n; ix++ {
			for iy := uint32(0); iy < n; iy++ {
				if CellRect(ix, iy, level).Intersects(r) != gotSet[[2]uint32{ix, iy}] {
					t.Fatalf("level %d rect %v: cell (%d,%d) mismatch", level, r, ix, iy)
				}
			}
		}
	}
}

func TestCodeIntervalNesting(t *testing.T) {
	f := func(ix, iy uint32) bool {
		const level = 10
		ix &= (1 << level) - 1
		iy &= (1 << level) - 1
		child := Peano.Code(ix, iy, level)
		parent := child >> 2
		clo, chi := CodeInterval(child, level)
		plo, phi := CodeInterval(parent, level-1)
		return plo <= clo && chi <= phi && clo < chi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestCodeIntervalDisjointSiblings(t *testing.T) {
	lo0, hi0 := CodeInterval(0, 1)
	lo1, hi1 := CodeInterval(1, 1)
	if hi0 != lo1 || lo0 >= hi0 || lo1 >= hi1 {
		t.Fatalf("sibling intervals not adjacent-disjoint: [%d,%d) [%d,%d)", lo0, hi0, lo1, hi1)
	}
}

func randRect(rng *rand.Rand) geom.Rect {
	// Mix of tiny and large rectangles to exercise all levels.
	cx, cy := rng.Float64(), rng.Float64()
	e := rng.Float64()
	var w, h float64
	if rng.Intn(2) == 0 {
		w, h = e*e*e*0.5, e*e*e*0.5
	} else {
		w, h = rng.Float64()*0.5, rng.Float64()*0.5
	}
	return geom.NewRect(cx, cy, cx+w, cy+h).ClampUnit()
}

func TestCurveString(t *testing.T) {
	if Peano.String() != "peano" || Hilbert.String() != "hilbert" {
		t.Fatal("curve names changed")
	}
}
