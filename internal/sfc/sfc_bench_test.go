package sfc

import (
	"testing"

	"spatialjoin/internal/geom"
)

// The paper's §4.4.2 picks the Peano curve over Hilbert purely on
// code-computation cost; these benchmarks quantify the gap on this
// hardware (the ablation abl-curve shows it end to end).

func BenchmarkPeanoCode(b *testing.B) {
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += Peano.Code(uint32(i)&0xFFFFF, uint32(i*7)&0xFFFFF, 20)
	}
	benchSink = sink
}

func BenchmarkHilbertCode(b *testing.B) {
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += Hilbert.Code(uint32(i)&0xFFFFF, uint32(i*7)&0xFFFFF, 20)
	}
	benchSink = sink
}

func BenchmarkContainmentLevel(b *testing.B) {
	r := geom.NewRect(0.312, 0.401, 0.313, 0.402)
	var sink int
	for i := 0; i < b.N; i++ {
		l, _, _ := ContainmentLevel(r, MaxLevel)
		sink += l
	}
	benchSink = uint64(sink)
}

func BenchmarkSizeLevel(b *testing.B) {
	r := geom.NewRect(0.312, 0.401, 0.313, 0.402)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += SizeLevel(r, MaxLevel)
	}
	benchSink = uint64(sink)
}

var benchSink uint64
