// Package sfc implements the space-filling curves and quadtree cell
// arithmetic used by S³J (§4 of the paper): Peano (Z-order / Morton)
// codes, Hilbert codes, locational codes of MX-CIF quadtree cells, and
// the level-assignment functions — the original containment-based rule of
// Koudas & Sevcik and the size-based rule of the paper's replicated
// variant (§4.3).
//
// The data space is the unit square [0,1)². A cell at level l is one of
// the 4^l squares of the equidistant grid with 2^l cells per axis; level
// 0 is the root (the whole space), matching the paper's numbering.
package sfc

import (
	"math"

	"spatialjoin/internal/geom"
)

// MaxLevel is the deepest supported quadtree level. 24 levels resolve the
// unit square to ~6e-8, far below the extent of any dataset rectangle,
// while keeping locational codes within 48 bits.
const MaxLevel = 24

// Curve selects the space-filling curve used for locational codes.
// §4.4.2 of the paper argues for Peano over Hilbert because its codes are
// cheaper to compute and the choice affects neither I/O nor the number of
// intersection tests; both are provided so the ablation can be run.
type Curve int

const (
	// Peano is the Z-order (Morton) curve, the paper's choice.
	Peano Curve = iota
	// Hilbert is the curve suggested in the original S³J paper.
	Hilbert
)

// String names the curve.
func (c Curve) String() string {
	if c == Hilbert {
		return "hilbert"
	}
	return "peano"
}

// Code returns the locational code of the cell (ix, iy) at the given
// level: the index of the cell along the curve, in [0, 4^level). Codes
// are hierarchical for both curves: the code of a cell's parent is
// code >> 2.
func (c Curve) Code(ix, iy uint32, level int) uint64 {
	if c == Hilbert {
		return hilbertD(ix, iy, level)
	}
	return zEncode(ix, iy, level)
}

// CellAt returns the grid coordinates of the level-l cell containing p.
// Points on the far boundary of the data space (coordinate exactly 1)
// are clamped into the last cell so that every point of [0,1]² has a
// well-defined home cell — the invariant the Reference Point Method
// relies on.
func CellAt(p geom.Point, level int) (ix, iy uint32) {
	n := uint32(1) << uint(level)
	return clampCell(p.X, n), clampCell(p.Y, n)
}

func clampCell(v float64, n uint32) uint32 {
	if v <= 0 {
		return 0
	}
	i := uint32(v * float64(n))
	if i >= n {
		i = n - 1
	}
	return i
}

// CellRect returns the region of cell (ix, iy) at the given level.
func CellRect(ix, iy uint32, level int) geom.Rect {
	size := math.Ldexp(1, -level) // 2^-level
	return geom.Rect{
		XL: float64(ix) * size,
		YL: float64(iy) * size,
		XH: float64(ix+1) * size,
		YH: float64(iy+1) * size,
	}
}

// CellCovers reports whether the level-l cell (ix, iy) covers r entirely
// (boundaries allowed).
func CellCovers(ix, iy uint32, level int, r geom.Rect) bool {
	return CellRect(ix, iy, level).ContainsRect(r)
}

// ContainmentLevel implements the original S³J / MX-CIF level assignment:
// the deepest level (≤ maxLevel) at which a single cell covers r, and the
// coordinates of that cell. Level 0 (the root) always covers, so the call
// cannot fail for rectangles within the data space.
func ContainmentLevel(r geom.Rect, maxLevel int) (level int, ix, iy uint32) {
	// Find the deepest level by halving: the covering cell of r at any
	// level is the cell containing r's lower-left corner, so walk down
	// while that cell still covers r.
	for l := 1; l <= maxLevel; l++ {
		cx, cy := CellAt(geom.Point{X: r.XL, Y: r.YL}, l)
		if !CellCovers(cx, cy, l, r) {
			return l - 1, ix, iy
		}
		ix, iy = cx, cy
	}
	return maxLevel, ix, iy
}

// SizeLevel implements the replicated variant's level assignment (§4.3):
//
//	max{ k | xh−xl ≤ 2^−k  ∧  yh−yl ≤ 2^−k }
//
// capped to [0, maxLevel]. Degenerate rectangles land on maxLevel.
func SizeLevel(r geom.Rect, maxLevel int) int {
	e := math.Max(r.Width(), r.Height())
	if e <= 0 {
		return maxLevel
	}
	k := int(math.Floor(-math.Log2(e)))
	// Floating-point log can be off by one near powers of two; fix up so
	// the defining inequality holds exactly.
	for k > 0 && math.Ldexp(1, -k) < e {
		k--
	}
	for math.Ldexp(1, -(k+1)) >= e {
		k++
	}
	if k < 0 {
		k = 0
	}
	if k > maxLevel {
		k = maxLevel
	}
	return k
}

// OverlapCells appends to dst the (ix, iy) coordinates of every level-l
// cell overlapping r and returns the extended slice. Cells whose shared
// boundary merely touches r are included, mirroring the closed-rectangle
// intersection semantics. For a rectangle at its SizeLevel the result has
// at most four cells, the paper's replication bound.
func OverlapCells(r geom.Rect, level int, dst [][2]uint32) [][2]uint32 {
	n := uint32(1) << uint(level)
	x0 := clampCell(r.XL, n)
	x1 := clampCell(r.XH, n)
	y0 := clampCell(r.YL, n)
	y1 := clampCell(r.YH, n)
	for iy := y0; iy <= y1; iy++ {
		for ix := x0; ix <= x1; ix++ {
			dst = append(dst, [2]uint32{ix, iy})
		}
	}
	return dst
}

// CodeInterval returns the half-open interval [lo, hi) of depth-MaxLevel
// locational codes covered by the cell with the given code at the given
// level. Cells at different levels compare on the curve through these
// intervals: an ancestor's interval contains all its descendants'.
func CodeInterval(code uint64, level int) (lo, hi uint64) {
	shift := uint(2 * (MaxLevel - level))
	return code << shift, (code + 1) << shift
}

// zEncode interleaves the low `level` bits of ix and iy into a Morton
// code: bit pairs are (y, x) from most significant cell split to least.
func zEncode(ix, iy uint32, level int) uint64 {
	return spread(ix, level) | spread(iy, level)<<1
}

// spread inserts a zero bit between each of the low `level` bits of v.
func spread(v uint32, level int) uint64 {
	x := uint64(v) & ((1 << uint(level)) - 1)
	x = (x | x<<16) & 0x0000FFFF0000FFFF
	x = (x | x<<8) & 0x00FF00FF00FF00FF
	x = (x | x<<4) & 0x0F0F0F0F0F0F0F0F
	x = (x | x<<2) & 0x3333333333333333
	x = (x | x<<1) & 0x5555555555555555
	return x
}

// ZDecode is the inverse of zEncode at the given level.
func ZDecode(code uint64, level int) (ix, iy uint32) {
	return compact(code), compact(code >> 1)
}

func compact(x uint64) uint32 {
	x &= 0x5555555555555555
	x = (x | x>>1) & 0x3333333333333333
	x = (x | x>>2) & 0x0F0F0F0F0F0F0F0F
	x = (x | x>>4) & 0x00FF00FF00FF00FF
	x = (x | x>>8) & 0x0000FFFF0000FFFF
	x = (x | x>>16) & 0x00000000FFFFFFFF
	return uint32(x)
}

// hilbertD converts cell coordinates to the Hilbert-curve index at the
// given order (level), using the classic iterative rotate-and-flip
// formulation. The resulting codes are hierarchical like Z-codes.
func hilbertD(x, y uint32, level int) uint64 {
	if level <= 0 {
		return 0
	}
	var d uint64
	for s := uint32(1) << uint(level-1); s > 0; s >>= 1 {
		var rx, ry uint32
		if x&s > 0 {
			rx = 1
		}
		if y&s > 0 {
			ry = 1
		}
		d += uint64(s) * uint64(s) * uint64((3*rx)^ry)
		// Rotate the quadrant.
		if ry == 0 {
			if rx == 1 {
				x = s - 1 - x
				y = s - 1 - y
			}
			x, y = y, x
		}
	}
	return d
}

// HilbertXY is the inverse of the Hilbert index at the given order.
func HilbertXY(d uint64, level int) (x, y uint32) {
	t := d
	for s := uint64(1); s < 1<<uint(level); s <<= 1 {
		rx := uint32(1) & uint32(t/2)
		ry := uint32(1) & uint32(t^uint64(rx))
		// Rotate back.
		if ry == 0 {
			if rx == 1 {
				x = uint32(s) - 1 - x
				y = uint32(s) - 1 - y
			}
			x, y = y, x
		}
		x += uint32(s) * rx
		y += uint32(s) * ry
		t /= 4
	}
	return x, y
}
