// Package tsv reads and writes relations of KPEs as tab-separated text
// (`id xl yl xh yh` per line), the interchange format of the cmd tools:
// sjdatagen -dump writes it, sjoin -rfile/-sfile read it, so external
// datasets (real TIGER extracts, exports from other systems) can flow
// through every join method.
package tsv

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"spatialjoin/internal/geom"
)

// Write emits one line per KPE with nine-digit coordinate precision.
func Write(w io.Writer, ks []geom.KPE) error {
	bw := bufio.NewWriter(w)
	for _, k := range ks {
		if _, err := fmt.Fprintf(bw, "%d\t%.9f\t%.9f\t%.9f\t%.9f\n",
			k.ID, k.Rect.XL, k.Rect.YL, k.Rect.XH, k.Rect.YH); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses KPE lines. Empty lines and lines starting with '#' are
// skipped. Rectangles are validated; corners may come in any order.
func Read(r io.Reader) ([]geom.KPE, error) {
	var out []geom.KPE
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 5 {
			return nil, fmt.Errorf("tsv: line %d: want 5 fields (id xl yl xh yh), got %d", lineNo, len(fields))
		}
		id, err := strconv.ParseUint(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("tsv: line %d: bad id %q: %w", lineNo, fields[0], err)
		}
		var c [4]float64
		for i := 0; i < 4; i++ {
			c[i], err = strconv.ParseFloat(fields[i+1], 64)
			if err != nil {
				return nil, fmt.Errorf("tsv: line %d: bad coordinate %q: %w", lineNo, fields[i+1], err)
			}
		}
		rect := geom.NewRect(c[0], c[1], c[2], c[3])
		if !rect.Valid() {
			return nil, fmt.Errorf("tsv: line %d: invalid rectangle %v", lineNo, rect)
		}
		out = append(out, geom.KPE{ID: id, Rect: rect})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("tsv: %w", err)
	}
	return out, nil
}

// Normalize shifts and scales ks so that the union MBR fits the unit
// data space [0,1]², the coordinate system every join method assumes.
// It returns the transformed copy; empty input returns nil.
func Normalize(ks []geom.KPE) []geom.KPE {
	if len(ks) == 0 {
		return nil
	}
	mbr := ks[0].Rect
	for _, k := range ks[1:] {
		mbr = mbr.Union(k.Rect)
	}
	w, h := mbr.Width(), mbr.Height()
	scale := 1.0
	if m := max(w, h); m > 0 {
		scale = 1 / m
	}
	out := make([]geom.KPE, len(ks))
	for i, k := range ks {
		out[i] = geom.KPE{ID: k.ID, Rect: geom.Rect{
			XL: (k.Rect.XL - mbr.XL) * scale,
			YL: (k.Rect.YL - mbr.YL) * scale,
			XH: (k.Rect.XH - mbr.XL) * scale,
			YH: (k.Rect.YH - mbr.YL) * scale,
		}}
	}
	return out
}
