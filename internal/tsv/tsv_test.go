package tsv

import (
	"bytes"
	"errors"
	"math"
	"strconv"
	"strings"
	"testing"

	"spatialjoin/internal/datagen"
	"spatialjoin/internal/geom"
)

func TestRoundTrip(t *testing.T) {
	ks := datagen.Uniform(1, 500, 0.05)
	var buf bytes.Buffer
	if err := Write(&buf, ks); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ks) {
		t.Fatalf("read %d, wrote %d", len(got), len(ks))
	}
	for i := range got {
		if got[i].ID != ks[i].ID {
			t.Fatalf("record %d: id %d != %d", i, got[i].ID, ks[i].ID)
		}
		// Nine decimal digits survive the round trip to ~1e-9.
		if math.Abs(got[i].Rect.XL-ks[i].Rect.XL) > 1e-8 ||
			math.Abs(got[i].Rect.YH-ks[i].Rect.YH) > 1e-8 {
			t.Fatalf("record %d: coordinates drifted: %v vs %v", i, got[i].Rect, ks[i].Rect)
		}
	}
}

func TestReadSkipsCommentsAndBlanks(t *testing.T) {
	in := `# a comment

1	0.1	0.1	0.2	0.2
# another
2	0.3	0.3	0.4	0.4
`
	got, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].ID != 1 || got[1].ID != 2 {
		t.Fatalf("got %v", got)
	}
}

func TestReadNormalizesCornerOrder(t *testing.T) {
	got, err := Read(strings.NewReader("7\t0.9\t0.8\t0.1\t0.2\n"))
	if err != nil {
		t.Fatal(err)
	}
	want := geom.NewRect(0.1, 0.2, 0.9, 0.8)
	if got[0].Rect != want {
		t.Fatalf("rect = %v, want %v", got[0].Rect, want)
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"1\t0.1\t0.1\t0.2\n",      // four fields
		"x\t0.1\t0.1\t0.2\t0.2\n", // bad id
		"1\t0.1\tfoo\t0.2\t0.2\n", // bad coordinate
		"1\tNaN\t0.1\t0.2\t0.2\n", // invalid rect
	}
	for i, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}

func TestReadErrorsUnwrap(t *testing.T) {
	// Parse failures wrap the strconv cause with %w, so callers can
	// still reach the *strconv.NumError underneath.
	cases := []string{
		"x\t0.1\t0.1\t0.2\t0.2\n", // bad id
		"1\t0.1\tfoo\t0.2\t0.2\n", // bad coordinate
	}
	for i, in := range cases {
		_, err := Read(strings.NewReader(in))
		if err == nil {
			t.Fatalf("case %d: want error", i)
		}
		var numErr *strconv.NumError
		if !errors.As(err, &numErr) {
			t.Errorf("case %d: %v does not unwrap to *strconv.NumError", i, err)
		}
	}
}

func TestNormalize(t *testing.T) {
	ks := []geom.KPE{
		{ID: 1, Rect: geom.NewRect(100, 200, 110, 210)},
		{ID: 2, Rect: geom.NewRect(150, 250, 160, 260)},
	}
	norm := Normalize(ks)
	mbr := norm[0].Rect.Union(norm[1].Rect)
	if mbr.XL < 0 || mbr.YL < 0 || mbr.XH > 1 || mbr.YH > 1 {
		t.Fatalf("normalized MBR %v escapes unit square", mbr)
	}
	if mbr.XL != 0 || mbr.YL != 0 {
		t.Fatalf("normalized data must start at origin, got %v", mbr)
	}
	// Aspect ratio preserved: both axes scaled by the same factor.
	origW := 60.0
	origH := 60.0
	if math.Abs(mbr.Width()/mbr.Height()-origW/origH) > 1e-12 {
		t.Fatalf("aspect ratio changed: %v", mbr)
	}
	if Normalize(nil) != nil {
		t.Fatal("empty input must return nil")
	}
	// IDs survive.
	if norm[0].ID != 1 || norm[1].ID != 2 {
		t.Fatal("IDs changed")
	}
}

func TestNormalizeDegenerate(t *testing.T) {
	// A single point dataset must not divide by zero.
	ks := []geom.KPE{{ID: 1, Rect: geom.NewRect(5, 5, 5, 5)}}
	norm := Normalize(ks)
	if !norm[0].Rect.Valid() {
		t.Fatalf("degenerate normalize produced %v", norm[0].Rect)
	}
}
