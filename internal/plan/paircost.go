package plan

import "spatialjoin/internal/geom"

// PairCost predicts the I/O cost units of executing one PBSM top-level
// partition pair holding nr + ns record copies under the given memory
// budget: the pair's data is written once in the partition phase and
// read once in the join phase, plus one extra write+read of the larger
// side per expected repartition level when the pair exceeds the budget.
// The shard coordinator ranks partitions by this cost to balance
// shard assignments (largest-cost-first bin packing); like the method
// predictors it is a planning estimate, not an accounting of the run.
func PairCost(nr, ns int64, memory int64, d Device) float64 {
	bytes := float64(nr+ns) * float64(geom.KPESize)
	pg := d.pages(bytes)
	cost := d.passCost(pg, d.BufPages) * 2
	if memory <= 0 {
		return cost
	}
	larger := nr
	if ns > larger {
		larger = ns
	}
	largerPg := d.pages(float64(larger) * float64(geom.KPESize))
	for over := bytes; over > float64(memory); over /= 2 {
		// Each repartition level streams the larger side out and back in.
		cost += d.passCost(largerPg, d.BufPages) * 2
	}
	return cost
}
