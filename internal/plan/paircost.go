package plan

import "spatialjoin/internal/iocost"

// PairCost predicts the I/O cost units of executing one PBSM top-level
// partition pair; it delegates to iocost.PairCost, which lives in a
// leaf package so that pbsm's progress estimator can share the exact
// model the shard coordinator assigns by. Kept here so planner-side
// callers need only one import.
func PairCost(nr, ns int64, memory int64, d Device) float64 {
	return iocost.PairCost(nr, ns, memory, d)
}
