package plan

import "testing"

func TestPairCost(t *testing.T) {
	d := DefaultDevice
	mem := int64(1 << 20)
	small := PairCost(100, 100, mem, d)
	big := PairCost(10000, 10000, mem, d)
	if small <= 0 || big <= small {
		t.Fatalf("PairCost not monotone in size: small=%v big=%v", small, big)
	}
	// A pair over budget pays repartition passes on top of the two base
	// passes over the same data.
	fits := PairCost(10000, 10000, 64<<20, d)
	over := PairCost(10000, 10000, 128<<10, d)
	if over <= fits {
		t.Fatalf("over-budget pair (%v) not costlier than fitting pair (%v)", over, fits)
	}
	// Determinism: same inputs, same estimate.
	if PairCost(1234, 567, mem, d) != PairCost(1234, 567, mem, d) {
		t.Fatal("PairCost is not deterministic")
	}
	if c := PairCost(0, 0, mem, d); c != 0 {
		t.Fatalf("empty pair cost = %v, want 0", c)
	}
}
