// Package plan predicts the I/O cost of each join method analytically —
// the quantitative version of the paper's §5.1 comparison (Table 3) —
// from nothing but the relation sizes, a sample, and the device
// parameters. A query optimizer can rank the no-index methods before
// running anything, which is exactly the setting the paper cares about:
// inputs that are intermediate results with no precomputed statistics
// (§3.2.3), where package estimate supplies the sampled quantities.
//
// Predictions are in the same deterministic cost units the simulator
// charges (PT + n per contiguous request), so tests validate them
// against measured runs directly.
package plan

import (
	"math"
	"sort"

	"spatialjoin/internal/core"
	"spatialjoin/internal/estimate"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/iocost"
	"spatialjoin/internal/sfc"
)

// Device describes the simulated disk parameters. It is an alias of
// iocost.Device — the cost model lives in that leaf package so pbsm,
// shard and the progress estimator can share it without importing the
// planner (which depends on core).
type Device = iocost.Device

// DefaultDevice matches the diskio defaults.
var DefaultDevice = iocost.DefaultDevice

// Prediction is the analytic I/O estimate for one method.
type Prediction struct {
	Method  core.Method
	IOUnits float64
	// Passes is the predicted number of full passes over the method's
	// working data (the Table 3 view).
	Passes float64
	// Replication is the predicted copies-per-input-record.
	Replication float64
}

// Workload is everything the predictor needs about the join.
type Workload struct {
	NR, NS  int        // relation cardinalities
	SampleR []geom.KPE // a sample of R (both relations pooled is fine)
	SampleS []geom.KPE
	Memory  int64
}

// PBSM predicts the partition-write plus join-read cost of PBSM with the
// Reference Point Method (repartitioning, which the paper measures as a
// minor contribution, is not modeled).
func PBSM(w Workload, d Device) Prediction {
	p := estimate.PartitionCount(w.NR, w.NS, w.Memory, 0)
	// Grid shape as built by the partitioner: NT = 4P tiles, square-ish.
	nt := 4 * p
	nx := 1
	for nx*nx < nt {
		nx++
	}
	ny := (nt + nx - 1) / nx
	rep := 1.0
	if sample := append(append([]geom.KPE(nil), w.SampleR...), w.SampleS...); len(sample) > 0 {
		rep = estimate.ReplicationRate(sample, nx, ny)
	}
	vol := rep * float64(w.NR+w.NS) * geom.KPESize
	pg := d.Pages(vol)
	write := d.PassCost(pg, d.BufFor(w.Memory, p))
	read := d.PassCost(pg, d.BufPages)
	return Prediction{
		Method:      core.PBSM,
		IOUnits:     write + read,
		Passes:      2,
		Replication: rep,
	}
}

// S3J predicts the level-file write, sort (read+write) and join-read
// cost of the replicated S³J.
func S3J(w Workload, d Device) Prediction {
	const levels = 10 // the s3j default
	rep := 1.0
	if sample := append(append([]geom.KPE(nil), w.SampleR...), w.SampleS...); len(sample) > 0 {
		var copies float64
		for _, k := range sample {
			l := sfc.SizeLevel(k.Rect, levels)
			copies += float64(len(sfc.OverlapCells(k.Rect, l, nil)))
		}
		rep = copies / float64(len(sample))
	}
	rec := float64(geom.KPESize + 8) // level-file records carry the code
	vol := rep * float64(w.NR+w.NS) * rec
	pg := d.Pages(vol)
	write := d.PassCost(pg, d.BufFor(w.Memory, levels+1))
	sortPasses := d.PassCost(pg, d.BufPages) + d.PassCost(pg, d.BufPages)
	read := d.PassCost(pg, d.BufFor(w.Memory, 2*(levels+1)))
	return Prediction{
		Method:      core.S3J,
		IOUnits:     write + sortPasses + read,
		Passes:      4,
		Replication: rep,
	}
}

// SSSJ predicts the materialize + external-sort + sweep-read cost of the
// sweeping join (no replication; an extra merge pass when a relation
// exceeds the sort workspace).
func SSSJ(w Workload, d Device) Prediction {
	vol := float64(w.NR+w.NS) * geom.KPESize
	pg := d.Pages(vol)
	passes := 4.0 // write raw, sort read+write (run formation), sweep read
	io := d.PassCost(pg, d.BufPages) * passes
	if vol > float64(w.Memory) {
		// Multi-run sorts add merge passes over the data.
		runs := vol / float64(w.Memory)
		fanin := math.Max(2, float64(w.Memory)/float64(d.BufPages*d.PageSize)-1)
		extra := math.Ceil(math.Log(runs) / math.Log(fanin))
		if extra > 0 {
			io += d.PassCost(pg, d.BufPages) * 2 * extra
			passes += 2 * extra
		}
	}
	return Prediction{Method: core.SSSJ, IOUnits: io, Passes: passes, Replication: 1}
}

// Rank returns the predictions for PBSM, S³J and SSSJ sorted by
// ascending predicted I/O cost.
func Rank(w Workload, d Device) []Prediction {
	preds := []Prediction{PBSM(w, d), S3J(w, d), SSSJ(w, d)}
	sort.Slice(preds, func(i, j int) bool { return preds[i].IOUnits < preds[j].IOUnits })
	return preds
}

// Choose returns a ready-to-run Config for the cheapest predicted
// method, with the internal algorithm picked by core.Recommend's
// memory-ratio rule when PBSM wins.
func Choose(w Workload, d Device) core.Config {
	best := Rank(w, d)[0]
	cfg := core.Recommend(w.NR, w.NS, w.Memory)
	cfg.Method = best.Method
	return cfg
}
