package plan

import (
	"testing"

	"spatialjoin/internal/core"
	"spatialjoin/internal/datagen"
	"spatialjoin/internal/estimate"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/s3j"
)

// measure runs one method on the default-device disk and returns the
// actual charged I/O units.
func measure(t *testing.T, method core.Method, R, S []geom.KPE, mem int64) float64 {
	t.Helper()
	cfg := core.Config{Method: method, Memory: mem}
	if method == core.S3J {
		cfg.S3JMode = s3j.ModeReplicate
	}
	_, res, err := core.Collect(R, S, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res.IO.CostUnits
}

func workload(R, S []geom.KPE, mem int64) Workload {
	return Workload{
		NR: len(R), NS: len(S),
		SampleR: estimate.Sample(R, 500, 1),
		SampleS: estimate.Sample(S, 500, 2),
		Memory:  mem,
	}
}

func TestPredictionsWithinFactorTwoOfMeasured(t *testing.T) {
	R := datagen.LARR(1, 20000).KPEs
	S := datagen.LAST(2, 20000).KPEs
	for _, frac := range []float64{0.1, 0.5} {
		mem := int64(frac * float64(int64(len(R)+len(S))*geom.KPESize))
		w := workload(R, S, mem)
		cases := []struct {
			pred Prediction
			meas float64
		}{
			{PBSM(w, DefaultDevice), measure(t, core.PBSM, R, S, mem)},
			{S3J(w, DefaultDevice), measure(t, core.S3J, R, S, mem)},
			{SSSJ(w, DefaultDevice), measure(t, core.SSSJ, R, S, mem)},
		}
		for _, c := range cases {
			ratio := c.pred.IOUnits / c.meas
			if ratio < 0.5 || ratio > 2.0 {
				t.Errorf("frac=%.1f %s: predicted %.0f units, measured %.0f (ratio %.2f)",
					frac, c.pred.Method, c.pred.IOUnits, c.meas, ratio)
			}
		}
	}
}

func TestRankMatchesMeasuredOrder(t *testing.T) {
	R := datagen.LARR(3, 15000).KPEs
	S := datagen.LAST(4, 15000).KPEs
	mem := int64(len(R)+len(S)) * geom.KPESize / 2
	w := workload(R, S, mem)
	ranked := Rank(w, DefaultDevice)
	if len(ranked) != 3 {
		t.Fatalf("rank size %d", len(ranked))
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i].IOUnits < ranked[i-1].IOUnits {
			t.Fatal("rank not sorted")
		}
	}
	// The measured cheapest method must be predicted cheapest.
	measured := map[core.Method]float64{
		core.PBSM: measure(t, core.PBSM, R, S, mem),
		core.S3J:  measure(t, core.S3J, R, S, mem),
		core.SSSJ: measure(t, core.SSSJ, R, S, mem),
	}
	bestMeasured := core.PBSM
	for m, v := range measured {
		if v < measured[bestMeasured] {
			bestMeasured = m
		}
	}
	if ranked[0].Method != bestMeasured {
		t.Fatalf("predicted winner %s, measured winner %s (pred %v, meas %v)",
			ranked[0].Method, bestMeasured, ranked, measured)
	}
}

func TestPredictionStructure(t *testing.T) {
	R := datagen.LAST(5, 5000).KPEs
	w := workload(R, R, 64<<10)
	p := PBSM(w, DefaultDevice)
	if p.Replication < 1 {
		t.Fatalf("PBSM replication %.2f below 1", p.Replication)
	}
	s := S3J(w, DefaultDevice)
	if s.Replication < 1 || s.Replication > 4 {
		t.Fatalf("S3J replication %.2f outside [1,4]", s.Replication)
	}
	if s.Passes <= p.Passes {
		t.Fatal("S3J must predict more passes than PBSM (Table 3)")
	}
	ss := SSSJ(w, DefaultDevice)
	if ss.Replication != 1 {
		t.Fatal("SSSJ never replicates")
	}
	// Tiny memory must predict extra merge passes.
	wSmall := workload(R, R, 8<<10)
	if SSSJ(wSmall, DefaultDevice).Passes <= 4 {
		t.Fatal("external sort must add passes at tiny memory")
	}
}

func TestChooseReturnsRunnableConfig(t *testing.T) {
	R := datagen.LARR(6, 3000).KPEs
	S := datagen.LAST(7, 3000).KPEs
	mem := int64(len(R)+len(S)) * geom.KPESize / 2
	cfg := Choose(workload(R, S, mem), DefaultDevice)
	pairs, _, err := core.Collect(R, S, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) == 0 {
		t.Fatal("chosen config produced no results")
	}
}
