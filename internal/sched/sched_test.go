package sched

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"spatialjoin/internal/geom"
	"spatialjoin/internal/govern"
	"spatialjoin/internal/trace"
)

// TestRunSerialInline: fewer than two workers runs every unit inline, in
// index order, on the calling goroutine (slot 0).
func TestRunSerialInline(t *testing.T) {
	for _, workers := range []int{0, 1} {
		var order []int
		err := Run(5, Options{Workers: workers}, func(w, i int) error {
			if w != 0 {
				t.Fatalf("serial path used slot %d", w)
			}
			order = append(order, i)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range order {
			if v != i {
				t.Fatalf("workers=%d: unit order %v, want ascending", workers, order)
			}
		}
		if len(order) != 5 {
			t.Fatalf("ran %d units, want 5", len(order))
		}
	}
}

// TestRunParallelCoversAllUnits: every unit runs exactly once, worker
// slots stay within bounds, and concurrency never exceeds Workers.
func TestRunParallelCoversAllUnits(t *testing.T) {
	const n, workers = 64, 4
	var ran [n]atomic.Int32
	var cur, peak atomic.Int32
	err := Run(n, Options{Workers: workers}, func(w, i int) error {
		if w < 0 || w >= workers {
			return fmt.Errorf("slot %d out of range", w)
		}
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		ran[i].Add(1)
		cur.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ran {
		if got := ran[i].Load(); got != 1 {
			t.Fatalf("unit %d ran %d times", i, got)
		}
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent units, cap %d", p, workers)
	}
}

// TestRunFirstErrorWins: the first failing unit's error is returned and
// later units are skipped (no unit starts after the error is set).
func TestRunFirstErrorWins(t *testing.T) {
	boom := errors.New("boom")
	var after atomic.Int32
	err := Run(100, Options{Workers: 4}, func(w, i int) error {
		if i == 3 {
			return boom
		}
		if i > 50 {
			after.Add(1)
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if after.Load() > 4 {
		t.Fatalf("%d late units ran after the error; pool did not drain", after.Load())
	}
}

// TestRunHonorsCancellation: a canceled context surfaces through the
// per-unit checkpoint on both the serial and the parallel path.
func TestRunHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	chk := govern.NewCheck(ctx)
	for _, workers := range []int{1, 4} {
		ran := 0
		err := Run(8, Options{Workers: workers, Cancel: chk}, func(w, i int) error {
			ran++
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if ran != 0 {
			t.Fatalf("workers=%d: %d units ran under a canceled context", workers, ran)
		}
	}
}

// TestRunGovernorCapsWorkers: with a governor that can only fund one
// extra slot, at most two workers run; declined slots surface in the
// governor stats and all memory is returned after the run.
func TestRunGovernorCapsWorkers(t *testing.T) {
	g := govern.NewGovernor(0, 100)
	release, err := g.Acquire(context.Background(), 50) // the join's own claim
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	var cur, peak atomic.Int32
	var mu sync.Mutex
	slots := map[int]bool{}
	err = Run(32, Options{Workers: 4, Gov: g, UnitMem: 50}, func(w, i int) error {
		mu.Lock()
		slots[w] = true
		mu.Unlock()
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		cur.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > 2 {
		t.Fatalf("governor funded %d concurrent workers, budget allows 2", p)
	}
	st := g.Stats()
	if st.WorkerGrants != 1 {
		t.Fatalf("WorkerGrants = %d, want 1", st.WorkerGrants)
	}
	if st.WorkerDeclined == 0 {
		t.Fatal("no slot was declined; cap assertion vacuous")
	}
	if st.ActiveMemory != 50 {
		t.Fatalf("ActiveMemory = %d after run, want 50 (worker grants not released)", st.ActiveMemory)
	}
}

// TestRunWorkerSpans: parallel workers open one span each under the
// given parent; the serial path opens none.
func TestRunWorkerSpans(t *testing.T) {
	rec := trace.New()
	root := rec.Begin("root")
	if err := Run(8, Options{Workers: 3, Span: root, Name: "unit-pool"}, func(w, i int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := Run(8, Options{Workers: 1, Span: root, Name: "unit-pool"}, func(w, i int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	root.End()
	n := 0
	for _, sd := range rec.Spans() {
		if sd.Name == "unit-pool" {
			n++
		}
	}
	if n != 3 {
		t.Fatalf("%d worker spans, want 3 (parallel run only)", n)
	}
}

// TestCollectorSerialOrder: regardless of completion order, the
// delivered sequence equals the serial unit order.
func TestCollectorSerialOrder(t *testing.T) {
	var got []geom.Pair
	c := NewCollector(4, func(p geom.Pair) { got = append(got, p) })
	// Units finish out of order: 2, 0, 3, 1.
	c.Emit(2, geom.Pair{R: 2, S: 0})
	c.Done(2)
	c.Emit(0, geom.Pair{R: 0, S: 0})
	c.Emit(0, geom.Pair{R: 0, S: 1})
	c.Done(0)
	c.Emit(3, geom.Pair{R: 3, S: 0})
	c.Done(3)
	c.Emit(1, geom.Pair{R: 1, S: 0})
	c.Done(1)
	want := []geom.Pair{{R: 0, S: 0}, {R: 0, S: 1}, {R: 1, S: 0}, {R: 2, S: 0}, {R: 3, S: 0}}
	if len(got) != len(want) {
		t.Fatalf("delivered %d pairs, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pair %d = %+v, want %+v (sequence %+v)", i, got[i], want[i], got)
		}
	}
}

// TestCollectorStreamsHead: pairs of the emission head unit reach the
// sink immediately, preserving pipelining for in-order completions.
func TestCollectorStreamsHead(t *testing.T) {
	var got []geom.Pair
	c := NewCollector(2, func(p geom.Pair) { got = append(got, p) })
	c.Emit(0, geom.Pair{R: 7, S: 7})
	if len(got) != 1 {
		t.Fatal("head unit's pair was buffered instead of streamed")
	}
	c.Done(0)
	c.Emit(1, geom.Pair{R: 8, S: 8})
	if len(got) != 2 {
		t.Fatal("new head unit's pair was buffered after handoff")
	}
	c.Done(1)
}

// TestCollectorConcurrent exercises the collector under the race
// detector with many concurrent emitters.
func TestCollectorConcurrent(t *testing.T) {
	const n, per = 16, 50
	var got []geom.Pair
	c := NewCollector(n, func(p geom.Pair) { got = append(got, p) })
	err := Run(n, Options{Workers: 8}, func(w, i int) error {
		for k := 0; k < per; k++ {
			c.Emit(i, geom.Pair{R: uint64(i), S: uint64(k)})
		}
		c.Done(i)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n*per {
		t.Fatalf("delivered %d pairs, want %d", len(got), n*per)
	}
	for i, p := range got {
		if want := (geom.Pair{R: uint64(i / per), S: uint64(i % per)}); p != want {
			t.Fatalf("pair %d = %+v, want %+v", i, p, want)
		}
	}
}
