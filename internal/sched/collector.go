package sched

import (
	"sync"

	"spatialjoin/internal/geom"
)

// Collector restores deterministic emission order to a parallel run:
// result pairs of unit 0 stream straight through, pairs of later units
// are buffered until every earlier unit has finished, and then flush in
// unit order. The delivered sequence is therefore EXACTLY the sequence
// a serial run of the same units would emit, at the cost of buffering
// the results of units that finish ahead of the emission head.
//
// The sink is only ever invoked with the collector's mutex held, so it
// needs no synchronization of its own — but it must not call back into
// the Collector, and it must not take a lock that an Emit caller holds.
type Collector struct {
	mu   sync.Mutex
	sink func(geom.Pair)
	buf  [][]geom.Pair // guarded by mu
	done []bool        // guarded by mu
	head int           // guarded by mu; first unit not yet finished; its pairs stream directly
}

// NewCollector creates a collector over n units delivering to sink.
func NewCollector(n int, sink func(geom.Pair)) *Collector {
	return &Collector{
		sink: sink,
		buf:  make([][]geom.Pair, n),
		done: make([]bool, n),
	}
}

// Emit delivers one pair of unit i: streamed when i is the emission
// head, buffered otherwise. Safe for concurrent use.
func (c *Collector) Emit(i int, p geom.Pair) {
	c.mu.Lock()
	if i == c.head {
		c.sink(p)
	} else {
		c.buf[i] = append(c.buf[i], p)
	}
	c.mu.Unlock()
}

// Done marks unit i finished. When i is the emission head, the head
// advances over every finished unit, flushing each one's buffer — and
// the first unfinished unit it lands on streams from then on. Each unit
// must call Done exactly once, after its last Emit.
func (c *Collector) Done(i int) {
	c.mu.Lock()
	c.done[i] = true
	for c.head < len(c.done) && c.done[c.head] {
		c.head++
		if c.head < len(c.buf) {
			for _, p := range c.buf[c.head] {
				c.sink(p)
			}
			c.buf[c.head] = nil
		}
	}
	c.mu.Unlock()
}
