// Package sched is the shared work scheduler of the join stack: one
// bounded worker pool implementation that every parallel phase runs on —
// PBSM's partition pairs, SHJ's bucket joins, S³J's per-level sorts, and
// extsort's run-formation chunks and merge groups. Centralizing the pool
// gives the stack one set of parallel-execution invariants instead of
// one bespoke worker loop per package:
//
//   - Cancellation: every worker polls the join's govern.Check before
//     each unit, so a canceled join unwinds within one unit per worker.
//   - Error propagation: the first error wins, later units are skipped,
//     and Run returns after every worker has wound down — no goroutine
//     outlives the call.
//   - Memory accounting: worker slot 0 is covered by the join's own
//     governor admission; each EXTRA slot claims Options.UnitMem from
//     the governor via TryAcquire and simply does not start when the
//     claim is denied. An over-committed machine degrades to fewer
//     workers (ultimately serial) instead of thrashing.
//   - Tracing: each parallel worker runs under its own child span, so
//     per-worker wall time and I/O deltas land in the trace tree.
//     Worker spans overlap in time; their I/O deltas are snapshots of
//     the shared disk counters and therefore overlap too — attribute
//     I/O to the enclosing phase span, not to a single worker.
//   - Determinism: units are handed out in index order, and the
//     Collector (see collector.go) restores emission order to exactly
//     the serial order when callers stream results.
//
// With fewer than two workers or fewer than two units, Run executes the
// units inline in index order on the calling goroutine — the serial
// path is the parallel path with the pool edited out, so a join at
// Parallel=1 behaves byte-for-byte like the pre-scheduler code.
package sched

import (
	"sync"

	"spatialjoin/internal/govern"
	"spatialjoin/internal/metrics"
	"spatialjoin/internal/trace"
)

// Options configures one Run.
type Options struct {
	// Workers is the maximum number of concurrent workers. Values < 2
	// (and unit counts < 2) select the inline serial path.
	Workers int
	// Name names the per-worker trace spans; default "worker".
	Name string
	// Span is the parent the per-worker spans nest under; nil disables
	// instrumentation. The serial path opens no extra spans.
	Span *trace.Span
	// Cancel is the owning join's cancellation checkpoint, polled
	// immediately before every unit; nil disables cancellation.
	Cancel *govern.Check
	// Gov, when non-nil, admission-controls the extra worker slots:
	// slot 0 always runs (the join's own admission claim covers one
	// serial working set), and each further slot must TryAcquire
	// UnitMem bytes or it is not started.
	Gov *govern.Governor
	// UnitMem is the worst-case working-set bytes one concurrent unit
	// adds beyond the join's serial claim; only meaningful with Gov.
	UnitMem int64
	// Metrics, when non-nil, publishes per-pool live series (units
	// queued/running/done, worker occupancy) labeled by Name.
	Metrics *metrics.Registry
}

func (o *Options) name() string {
	if o.Name == "" {
		return "worker"
	}
	return o.Name
}

// Run executes unit(w, i) for every i in [0, n), at most Options.Workers
// at a time. w is a stable worker-slot index in [0, workers): a slot
// runs its units sequentially on one goroutine, so callers may keep
// per-slot state (a sweep algorithm, a scratch buffer) without locking.
// Units are dispatched in index order; completion order is unspecified.
// The first unit error (or cancellation) is returned, remaining units
// are skipped, and Run does not return before all workers have exited.
func Run(n int, o Options, unit func(w, i int) error) error {
	workers := o.Workers
	if workers > n {
		workers = n
	}
	pm := o.poolMetrics()
	if pm != nil {
		pm.queued.Add(int64(n))
		defer pm.drain()
	}
	if workers < 2 || n < 2 {
		if pm != nil {
			pm.workers.Set(1)
		}
		for i := 0; i < n; i++ {
			if err := o.Cancel.Now(); err != nil {
				return err
			}
			pm.unitStart()
			err := unit(0, i)
			pm.unitEnd()
			if err != nil {
				return err
			}
		}
		return nil
	}

	// Pre-filled closed channel: a worker that bails out early after an
	// error never leaves a sender blocked.
	ch := make(chan int, n)
	for i := 0; i < n; i++ {
		ch <- i
	}
	close(ch)

	var (
		errMu    sync.Mutex
		firstErr error
	)
	setErr := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	failed := func() bool {
		errMu.Lock()
		defer errMu.Unlock()
		return firstErr != nil
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		// Slot 0 is funded by the join's own admission; every extra
		// slot multiplies the working set and must claim the overshoot.
		// A denied claim is not an error — the pool just stays smaller.
		var release func()
		if w > 0 && o.Gov != nil {
			rel, ok := o.Gov.TryAcquire(o.UnitMem)
			if !ok {
				break
			}
			release = rel
		}
		wg.Add(1)
		if pm != nil {
			pm.workers.Add(1)
		}
		go func(w int, release func()) {
			defer wg.Done()
			if release != nil {
				defer release()
			}
			if pm != nil {
				defer pm.workers.Add(-1)
			}
			sp := o.Span.Child(o.name())
			defer sp.End()
			sp.SetAttr("slot", int64(w))
			for i := range ch {
				if failed() {
					return
				}
				if err := o.Cancel.Now(); err != nil {
					setErr(err)
					return
				}
				pm.unitStart()
				err := unit(w, i)
				pm.unitEnd()
				if err != nil {
					setErr(err)
					return
				}
			}
		}(w, release)
	}
	wg.Wait()
	errMu.Lock()
	defer errMu.Unlock()
	return firstErr
}
