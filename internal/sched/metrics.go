package sched

import "spatialjoin/internal/metrics"

// Metric names owned by package sched. Every family is a vec labeled
// by pool name (Options.Name), so PBSM pair workers, SHJ bucket
// workers, extsort runs/merges and S³J level sorts each get their own
// live series from the one shared scheduler.
const (
	// metUnitsQueued is the number of units not yet started in the pool.
	metUnitsQueued = "sched.units.queued"
	// metUnitsRunning is the number of units executing right now.
	metUnitsRunning = "sched.units.running"
	// metUnitsDone counts units retired (success or error).
	metUnitsDone = "sched.units.done"
	// metWorkersActive is the number of live worker slots, including
	// slot 0; it exposes governor-degraded pools (fewer slots granted
	// than requested) directly.
	metWorkersActive = "sched.workers.active"
)

// poolMetrics is the per-Run handle set; nil when no registry is
// attached, and every method is nil-safe through the handle types.
type poolMetrics struct {
	queued  *metrics.Gauge
	running *metrics.Gauge
	done    *metrics.Counter
	workers *metrics.Gauge
}

// poolMetrics resolves the pool's handles, or nil without a registry.
func (o *Options) poolMetrics() *poolMetrics {
	if o.Metrics == nil {
		return nil
	}
	pool := o.name()
	return &poolMetrics{
		queued:  o.Metrics.GaugeVec(metUnitsQueued, "pool").With(pool),
		running: o.Metrics.GaugeVec(metUnitsRunning, "pool").With(pool),
		done:    o.Metrics.CounterVec(metUnitsDone, "pool").With(pool),
		workers: o.Metrics.GaugeVec(metWorkersActive, "pool").With(pool),
	}
}

// unitStart moves one unit from queued to running.
func (pm *poolMetrics) unitStart() {
	if pm == nil {
		return
	}
	pm.queued.Add(-1)
	pm.running.Add(1)
}

// unitEnd retires one running unit.
func (pm *poolMetrics) unitEnd() {
	if pm == nil {
		return
	}
	pm.running.Add(-1)
	pm.done.Inc()
}

// drain zeroes the pool's live gauges when a Run returns early (error
// or cancellation skipped queued units).
func (pm *poolMetrics) drain() {
	if pm == nil {
		return
	}
	pm.queued.Set(0)
	pm.running.Set(0)
	pm.workers.Set(0)
}
