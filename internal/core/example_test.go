package core_test

import (
	"fmt"
	"sort"

	"spatialjoin/internal/core"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/s3j"
)

// The minimal join: two tiny relations, PBSM with the Reference Point
// Method (the default), results delivered through a callback.
func ExampleJoin() {
	R := []geom.KPE{
		{ID: 1, Rect: geom.NewRect(0.1, 0.1, 0.4, 0.4)},
		{ID: 2, Rect: geom.NewRect(0.6, 0.6, 0.9, 0.9)},
	}
	S := []geom.KPE{
		{ID: 10, Rect: geom.NewRect(0.3, 0.3, 0.7, 0.7)}, // touches both
		{ID: 11, Rect: geom.NewRect(0.0, 0.8, 0.1, 0.9)}, // touches neither
	}
	var pairs []geom.Pair
	_, err := core.Join(R, S, core.Config{Memory: 1 << 20}, func(p geom.Pair) {
		pairs = append(pairs, p)
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].Less(pairs[j]) })
	for _, p := range pairs {
		fmt.Printf("%d-%d\n", p.R, p.S)
	}
	// Output:
	// 1-10
	// 2-10
}

// Selecting S³J with the paper's replication improvement instead of
// PBSM; the result set is identical, only the processing differs.
func ExampleJoin_s3j() {
	R := []geom.KPE{{ID: 1, Rect: geom.NewRect(0.2, 0.2, 0.5, 0.5)}}
	S := []geom.KPE{{ID: 2, Rect: geom.NewRect(0.4, 0.4, 0.8, 0.8)}}
	res, err := core.Join(R, S, core.Config{
		Method:  core.S3J,
		S3JMode: s3j.ModeReplicate,
		Memory:  1 << 20,
	}, func(p geom.Pair) {
		fmt.Printf("%d intersects %d\n", p.R, p.S)
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("results:", res.Results)
	// Output:
	// 1 intersects 2
	// results: 1
}

// Pulling results through the open-next-close iterator, the operator
// interface of Graefe that the paper's on-line duplicate removal keeps
// unblocked.
func ExampleOpen() {
	R := []geom.KPE{{ID: 1, Rect: geom.NewRect(0, 0, 1, 1)}}
	S := []geom.KPE{
		{ID: 5, Rect: geom.NewRect(0.1, 0.1, 0.2, 0.2)},
		{ID: 6, Rect: geom.NewRect(0.7, 0.7, 0.8, 0.8)},
	}
	it := core.Open(R, S, core.Config{Memory: 1 << 20})
	defer it.Close()
	n := 0
	for {
		_, ok := it.Next()
		if !ok {
			break
		}
		n++
	}
	fmt.Println("pairs:", n)
	// Output:
	// pairs: 2
}

// Recommend encodes the paper's conclusions: PBSM with the sweep-line
// structure chosen by the memory-to-input ratio.
func ExampleRecommend() {
	cfg := core.Recommend(100000, 100000, 64<<20)
	fmt.Println(cfg.Method, cfg.Algorithm)
	cfg = core.Recommend(100000, 100000, 1<<20)
	fmt.Println(cfg.Method, cfg.Algorithm)
	// Output:
	// pbsm trie
	// pbsm list
}
