package core

import (
	"spatialjoin/internal/geom"
	"spatialjoin/internal/sweep"
)

// Recommend returns a Config following the operational conclusions of
// the paper's §5 and §6 for a join of nr × ns KPEs under a memory budget
// of m bytes:
//
//   - PBSM with the Reference Point Method is the method of choice
//     ("our best version of PBSM still outperforms S³J on the average by
//     a factor of two").
//   - The internal algorithm follows Figure 5's crossover: the classic
//     list-based Plane Sweep Intersection-Test while partitions stay
//     small (memory under ~30 % of the input size), the trie-based sweep
//     once partitions grow — including the everything-in-memory case,
//     where the list degenerates (§3.2.2).
//
// Callers with unusual constraints (minimal resident footprint during
// the join phase, strictly bounded replication) can still pick S³J with
// replication manually; Recommend optimizes for total runtime.
func Recommend(nr, ns int, m int64) Config {
	cfg := Config{
		Method: PBSM,
		Memory: m,
	}
	inputBytes := int64(nr+ns) * geom.KPESize
	if inputBytes > 0 && float64(m) >= 0.3*float64(inputBytes) {
		cfg.Algorithm = sweep.TrieKind
	} else {
		cfg.Algorithm = sweep.ListKind
	}
	return cfg
}
