package core

import "spatialjoin/internal/metrics"

// Metric names owned by package core: whole-join lifecycle counters,
// the process-level view a daemon scrapes to see joins flowing.
const (
	// metJoinsStarted counts joins that passed validation + admission.
	metJoinsStarted = "core.joins.started"
	// metJoinsCompleted counts joins that returned success.
	metJoinsCompleted = "core.joins.completed"
	// metJoinsFailed counts joins that returned an error (including
	// cancellation).
	metJoinsFailed = "core.joins.failed"
	// metJoinsActive is the number of joins currently executing in this
	// process (post-admission, pre-return).
	metJoinsActive = "core.joins.active"
	// metResults counts result pairs delivered to callers.
	metResults = "core.results"
)

// joinMetrics is the per-Join handle set; nil without a registry, with
// every method nil-safe.
type joinMetrics struct {
	started   *metrics.Counter
	completed *metrics.Counter
	failed    *metrics.Counter
	active    *metrics.Gauge
	results   *metrics.Counter
}

// newJoinMetrics resolves the lifecycle handles, or nil without a
// registry.
func newJoinMetrics(r *metrics.Registry) *joinMetrics {
	if r == nil {
		return nil
	}
	return &joinMetrics{
		started:   r.Counter(metJoinsStarted),
		completed: r.Counter(metJoinsCompleted),
		failed:    r.Counter(metJoinsFailed),
		active:    r.Gauge(metJoinsActive),
		results:   r.Counter(metResults),
	}
}

// begin marks one join entering execution.
func (jm *joinMetrics) begin() {
	if jm == nil {
		return
	}
	jm.started.Inc()
	jm.active.Add(1)
}

// end marks the join leaving execution, with its outcome.
func (jm *joinMetrics) end(results int64, err error) {
	if jm == nil {
		return
	}
	jm.active.Add(-1)
	if err != nil {
		jm.failed.Inc()
		return
	}
	jm.completed.Inc()
	jm.results.Add(results)
}
