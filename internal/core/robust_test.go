package core

import (
	"math"
	"runtime"
	"strings"
	"testing"
	"time"

	"spatialjoin/internal/geom"
)

// TestJoinRejectsInvalidGeometry: every method must refuse NaN/Inf
// coordinates and inverted rectangles with a descriptive error instead
// of silently computing a wrong (or empty) result.
func TestJoinRejectsInvalidGeometry(t *testing.T) {
	good := geom.KPE{ID: 1, Rect: geom.NewRect(0.1, 0.1, 0.4, 0.4)}
	cases := []struct {
		name string
		bad  geom.KPE
		want string // substring of the error
	}{
		{"nan-low", geom.KPE{ID: 7, Rect: geom.Rect{XL: math.NaN(), YL: 0, XH: 1, YH: 1}}, "non-finite"},
		{"nan-high", geom.KPE{ID: 7, Rect: geom.Rect{XL: 0, YL: 0, XH: 1, YH: math.NaN()}}, "non-finite"},
		{"pos-inf", geom.KPE{ID: 7, Rect: geom.Rect{XL: 0, YL: 0, XH: math.Inf(1), YH: 1}}, "non-finite"},
		{"neg-inf", geom.KPE{ID: 7, Rect: geom.Rect{XL: math.Inf(-1), YL: 0, XH: 1, YH: 1}}, "non-finite"},
		{"inverted-x", geom.KPE{ID: 7, Rect: geom.Rect{XL: 0.9, YL: 0.1, XH: 0.2, YH: 0.5}}, "inverted"},
		{"inverted-y", geom.KPE{ID: 7, Rect: geom.Rect{XL: 0.1, YL: 0.8, XH: 0.5, YH: 0.2}}, "inverted"},
	}
	for _, method := range []Method{PBSM, S3J, SSSJ, SHJ} {
		for _, tc := range cases {
			for _, side := range []string{"R", "S"} {
				R, S := []geom.KPE{good, good}, []geom.KPE{good}
				if side == "R" {
					R = append(R, tc.bad)
				} else {
					S = append(S, tc.bad)
				}
				_, _, err := Collect(R, S, Config{Method: method, Memory: 1 << 20})
				if err == nil {
					t.Fatalf("%s/%s/%s: invalid input accepted", method, tc.name, side)
				}
				if !strings.Contains(err.Error(), tc.want) {
					t.Fatalf("%s/%s/%s: error %q does not mention %q", method, tc.name, side, err, tc.want)
				}
				if !strings.Contains(err.Error(), side+"[") {
					t.Fatalf("%s/%s/%s: error %q does not locate the bad record", method, tc.name, side, err)
				}
			}
		}
	}
}

// TestJoinAcceptsDegenerateButValidGeometry: points and zero-width
// rectangles are fine — only truly malformed input is rejected.
func TestJoinAcceptsDegenerateButValidGeometry(t *testing.T) {
	R := []geom.KPE{{ID: 1, Rect: geom.Rect{XL: 0.5, YL: 0.5, XH: 0.5, YH: 0.5}}} // a point
	S := []geom.KPE{{ID: 2, Rect: geom.NewRect(0, 0, 1, 1)}}
	pairs, _, err := Collect(R, S, Config{Memory: 1 << 20})
	if err != nil {
		t.Fatalf("degenerate rectangle rejected: %v", err)
	}
	if len(pairs) != 1 {
		t.Fatalf("point-in-rect join returned %d pairs", len(pairs))
	}
}

// TestIteratorRecoversProducerPanic: a panic inside the join must
// surface via Err, terminate the iterator, and leak no goroutine.
func TestIteratorRecoversProducerPanic(t *testing.T) {
	orig := joinFn
	defer func() { joinFn = orig }()
	joinFn = func(R, S []geom.KPE, cfg Config, emit func(geom.Pair)) (Result, error) {
		emit(geom.Pair{R: 1, S: 1})
		panic("boom: injected join failure")
	}

	before := runtime.NumGoroutine()
	it := Open(nil, nil, Config{Memory: 1 << 20})
	n := 0
	for {
		_, ok := it.Next()
		if !ok {
			break
		}
		n++
	}
	if err := it.Err(); err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("Err = %v, want recovered panic", err)
	}
	if n != 1 {
		t.Fatalf("results before panic = %d, want 1", n)
	}
	it.Close() // must be safe after exhaustion

	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before {
		t.Fatalf("goroutine leak after recovered panic: %d > %d", g, before)
	}
}

// TestIteratorPanicWithEarlyClose: closing before the panic must not
// deadlock Close.
func TestIteratorPanicWithEarlyClose(t *testing.T) {
	orig := joinFn
	defer func() { joinFn = orig }()
	release := make(chan struct{})
	joinFn = func(R, S []geom.KPE, cfg Config, emit func(geom.Pair)) (Result, error) {
		for i := 0; i < 1000; i++ {
			emit(geom.Pair{R: uint64(i), S: uint64(i)})
		}
		<-release
		panic("late boom")
	}
	it := Open(nil, nil, Config{Memory: 1 << 20})
	it.Next()
	close(release)
	it.Close()
	if err := it.Err(); err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("Err = %v, want recovered panic", err)
	}
}
