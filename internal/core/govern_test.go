package core

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"spatialjoin/internal/datagen"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/joinerr"
)

func governedInputs() (R, S []geom.KPE) {
	return datagen.Uniform(7, 500, 0.01), datagen.Uniform(8, 500, 0.01)
}

// TestJoinWaitsForAdmission: with a one-slot governor held externally, a
// Join queues — it does not touch its disk or emit — until the slot is
// released, then runs to completion.
func TestJoinWaitsForAdmission(t *testing.T) {
	g := NewGovernor(1, 0)
	release, err := g.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	R, S := governedInputs()
	var emitted atomic.Int64
	done := make(chan error, 1)
	go func() {
		_, err := Join(R, S, Config{Memory: 1 << 20, Governor: g},
			func(geom.Pair) { emitted.Add(1) })
		done <- err
	}()
	// The join must reach the queue, and must not start while queued.
	for g.Stats().Queued != 1 {
		time.Sleep(time.Millisecond)
	}
	if n := emitted.Load(); n != 0 {
		t.Fatalf("queued join emitted %d pairs before admission", n)
	}
	release()
	if err := <-done; err != nil {
		t.Fatalf("admitted join failed: %v", err)
	}
	if emitted.Load() == 0 {
		t.Fatal("admitted join emitted nothing")
	}
	// Admitted counts the manual hold too; the join itself must have waited.
	if st := g.Stats(); st.Admitted != 2 || st.Waited != 1 || st.Active != 0 {
		t.Fatalf("governor state after join: %+v", st)
	}
}

// TestJoinAdmissionFailFast: a join whose memory claim alone exceeds the
// governor's budget fails immediately with a JoinError attributing the
// admission phase, kind Admission.
func TestJoinAdmissionFailFast(t *testing.T) {
	g := NewGovernor(0, 100)
	R, S := governedInputs()
	_, err := Join(R, S, Config{Memory: 1 << 20, Governor: g}, func(geom.Pair) {})
	var je *joinerr.JoinError
	if !errors.As(err, &je) {
		t.Fatalf("got %T: %v, want JoinError", err, err)
	}
	if je.Phase != "admission" || je.Kind != joinerr.KindAdmission {
		t.Fatalf("got phase %q kind %v, want admission/admission", je.Phase, je.Kind)
	}
	if joinerr.IsCanceled(err) {
		t.Fatal("admission rejection must not classify as cancellation")
	}
}

// TestJoinDeadlineInQueue: a queued join whose Deadline expires while
// waiting fails with kind DeadlineExceeded in the admission phase, and
// the abandoned slot is reusable.
func TestJoinDeadlineInQueue(t *testing.T) {
	g := NewGovernor(1, 0)
	release, err := g.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	R, S := governedInputs()
	_, err = Join(R, S, Config{Memory: 1 << 20, Governor: g, Deadline: 20 * time.Millisecond},
		func(geom.Pair) {})
	var je *joinerr.JoinError
	if !errors.As(err, &je) {
		t.Fatalf("got %T: %v, want JoinError", err, err)
	}
	if je.Phase != "admission" || je.Kind != joinerr.KindDeadlineExceeded {
		t.Fatalf("got phase %q kind %v, want admission/deadline-exceeded", je.Phase, je.Kind)
	}
	release()
	if _, err := Join(R, S, Config{Memory: 1 << 20, Governor: g}, func(geom.Pair) {}); err != nil {
		t.Fatalf("join after abandoned queue slot: %v", err)
	}
}

// TestJoinDeadlineMidJoin: an already-expired deadline stops the join at
// its first checkpoint with a clean DeadlineExceeded error naming a
// phase, and no temp files survive.
func TestJoinDeadlineMidJoin(t *testing.T) {
	R, S := governedInputs()
	cfg := Config{Memory: 16 << 10, Deadline: time.Nanosecond}
	d := cfg.disk()
	cfg.Disk = d
	_, err := Join(R, S, cfg, func(geom.Pair) {})
	var je *joinerr.JoinError
	if !errors.As(err, &je) {
		t.Fatalf("got %T: %v, want JoinError", err, err)
	}
	if je.Kind != joinerr.KindDeadlineExceeded || je.Phase == "" {
		t.Fatalf("got kind %v phase %q, want deadline-exceeded with a phase", je.Kind, je.Phase)
	}
	if !joinerr.IsCanceled(err) {
		t.Fatalf("IsCanceled false for %v", err)
	}
	if n := d.NumFiles(); n != 0 {
		t.Fatalf("%d temp files left by deadline-killed join: %v", n, d.FileNames())
	}
}

// TestJoinCanceledContext: a pre-canceled caller context aborts the join
// with kind Canceled.
func TestJoinCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	R, S := governedInputs()
	_, err := Join(R, S, Config{Memory: 16 << 10, Ctx: ctx}, func(geom.Pair) {})
	if joinerr.KindOf(err) != joinerr.KindCanceled {
		t.Fatalf("got %v (kind %v), want canceled", err, joinerr.KindOf(err))
	}
}

// TestOpenHonorsCancel: the iterator path surfaces cancellation through
// Err and terminates cleanly even when the consumer never pulls a row.
func TestOpenHonorsCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	R, S := governedInputs()
	it := Open(R, S, Config{Memory: 16 << 10, Ctx: ctx})
	if _, ok := it.Next(); ok {
		// A pair may have been emitted before the first checkpoint; drain.
		for {
			if _, ok := it.Next(); !ok {
				break
			}
		}
	}
	it.Close()
	if err := it.Err(); !joinerr.IsCanceled(err) {
		t.Fatalf("iterator error %v, want cancellation", err)
	}
}
