package core

import (
	"sync"
	"testing"
	"time"

	"spatialjoin/internal/datagen"
	"spatialjoin/internal/diskio"
	"spatialjoin/internal/s3j"
)

// The correctness of every method must be independent of the device
// parameters (page size, positioning ratio, buffer size) — those only
// change what gets charged. This matrix also exercises the record codecs
// across odd page boundaries.
func TestDeviceParameterMatrix(t *testing.T) {
	R := datagen.LARR(1, 600).KPEs
	S := datagen.LAST(2, 600).KPEs
	want := naiveJoin(R, S)
	for _, pageSize := range []int{128, 1024, 8192, 65536} {
		for _, bufPages := range []int{1, 4, 16} {
			for _, method := range []Method{PBSM, S3J, SSSJ, SHJ} {
				cfg := Config{
					Method:   method,
					Memory:   12 << 10,
					PageSize: pageSize,
					PT:       7,
					Transfer: time.Microsecond,
					BufPages: bufPages,
					S3JMode:  s3j.ModeReplicate,
				}
				got, res, err := Collect(R, S, cfg)
				if err != nil {
					t.Fatalf("page=%d buf=%d %s: %v", pageSize, bufPages, method, err)
				}
				if len(got) != len(want) {
					t.Fatalf("page=%d buf=%d %s: %d results, want %d",
						pageSize, bufPages, method, len(got), len(want))
				}
				if res.IO.CostUnits <= 0 {
					t.Fatalf("page=%d buf=%d %s: no I/O charged", pageSize, bufPages, method)
				}
			}
		}
	}
}

// Smaller pages mean more requests and therefore more positioning cost
// for the same data volume — the monotonicity the cost model promises.
func TestSmallerPagesCostMore(t *testing.T) {
	R := datagen.LARR(3, 2000).KPEs
	S := datagen.LAST(4, 2000).KPEs
	run := func(pageSize int) float64 {
		d := diskio.NewDisk(pageSize, 20, time.Microsecond)
		_, res, err := Collect(R, S, Config{Method: PBSM, Memory: 16 << 10, Disk: d})
		if err != nil {
			t.Fatal(err)
		}
		return res.IO.CostUnits
	}
	small := run(512)
	large := run(16384)
	if small <= large {
		t.Fatalf("512B pages (%g units) must cost more than 16KB pages (%g)", small, large)
	}
}

// A shared disk accumulates across joins; per-join deltas must still be
// correct (the Result.IO is a delta, not a total).
func TestSharedDiskDeltas(t *testing.T) {
	R := datagen.Uniform(5, 400, 0.03)
	d := diskio.NewDisk(0, 0, time.Microsecond)
	cfg := Config{Method: PBSM, Memory: 8 << 10, Disk: d}
	_, first, err := Collect(R, R, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, second, err := Collect(R, R, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if first.IO.CostUnits != second.IO.CostUnits {
		t.Fatalf("identical joins on a shared disk must charge identical deltas: %g vs %g",
			first.IO.CostUnits, second.IO.CostUnits)
	}
	if total := d.Stats().CostUnits; total != first.IO.CostUnits+second.IO.CostUnits {
		t.Fatalf("disk total %g != sum of deltas %g", total,
			first.IO.CostUnits+second.IO.CostUnits)
	}
}

// Result.IO is a snapshot delta on the disk's counters; without
// serialization, two joins racing on one shared disk would each
// attribute the other's I/O to itself. Join serializes whole joins per
// shared disk, so every concurrent delta must equal the solo delta and
// the disk total must be their exact sum.
func TestSharedDiskConcurrentJoinDeltas(t *testing.T) {
	R := datagen.Uniform(6, 400, 0.03)
	solo := func() float64 {
		d := diskio.NewDisk(0, 0, time.Microsecond)
		_, res, err := Collect(R, R, Config{Method: PBSM, Memory: 8 << 10, Disk: d})
		if err != nil {
			t.Fatal(err)
		}
		return res.IO.CostUnits
	}()

	const workers = 4
	d := diskio.NewDisk(0, 0, time.Microsecond)
	deltas := make([]float64, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			_, res, err := Collect(R, R, Config{Method: PBSM, Memory: 8 << 10, Disk: d})
			deltas[w], errs[w] = res.IO.CostUnits, err
		}(w)
	}
	wg.Wait()
	var sum float64
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			t.Fatalf("worker %d: %v", w, errs[w])
		}
		if deltas[w] != solo {
			t.Fatalf("worker %d delta %g != solo delta %g (interleaved attribution)", w, deltas[w], solo)
		}
		sum += deltas[w]
	}
	if total := d.Stats().CostUnits; total != sum {
		t.Fatalf("disk total %g != sum of concurrent deltas %g", total, sum)
	}
}
