// Package core is the public facade of the spatial-join library. It wires
// together the two partition-based join methods the paper studies — PBSM
// (Patel & DeWitt) and S³J (Koudas & Sevcik) — with the improvements of
// Dittrich & Seeger (ICDE 2000): Reference-Point-Method duplicate
// elimination, selectable internal plane-sweep algorithms, and S³J data
// replication.
//
// The entry points are Join (callback-driven, pipelined) and Open (an
// open-next-close iterator in the sense of Graefe's operator model, so a
// spatial join can sit inside an operator tree and produce results
// incrementally — one of the paper's core arguments for on-line duplicate
// removal).
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"spatialjoin/internal/diskio"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/govern"
	"spatialjoin/internal/joinerr"
	"spatialjoin/internal/metrics"
	"spatialjoin/internal/pbsm"
	"spatialjoin/internal/s3j"
	"spatialjoin/internal/sfc"
	"spatialjoin/internal/shj"
	"spatialjoin/internal/sssj"
	"spatialjoin/internal/sweep"
	"spatialjoin/internal/trace"
)

// Method selects the join algorithm.
type Method string

const (
	// PBSM is the Partition Based Spatial-Merge Join.
	PBSM Method = "pbsm"
	// S3J is the Size Separation Spatial Join.
	S3J Method = "s3j"
	// SSSJ is the Scalable Sweeping-Based Spatial Join [APR+ 98].
	SSSJ Method = "sssj"
	// SHJ is the Spatial Hash Join of Lo & Ravishankar [LR 96].
	SHJ Method = "shj"
)

// Config selects and tunes a spatial join. The zero value is not valid:
// Memory must be positive. All other fields have sensible defaults.
type Config struct {
	// Method is the join algorithm; default PBSM.
	Method Method
	// Memory is the main-memory budget in bytes available to the join
	// (the M of the paper). Required.
	Memory int64
	// Algorithm is the internal in-memory join algorithm. Defaults: list
	// sweep for PBSM, nested loops for S³J — each method's best general
	// choice per §3.2.2 and §4.4.1.
	Algorithm sweep.Kind
	// Parallel is the worker count for the parallel phases of every
	// method (PBSM's partition pairs, SHJ's bucket joins, S³J's level
	// sorts and the run formation and merge groups inside each external
	// sort), all running on the shared scheduler of package sched. Zero
	// selects GOMAXPROCS; 1 (or negative) forces sequential execution.
	// The result set AND its emission order are identical at every
	// worker count — parallelism changes only wall-clock time, never
	// the simulated I/O accounting.
	Parallel int

	// PBSMDup selects PBSM's duplicate-elimination strategy; default
	// DupRPM (the paper's improvement). Ignored for S³J.
	PBSMDup pbsm.DupMethod
	// PBSMTuneFactor, PBSMTilesPerPartition and PBSMMaxRecurse tune
	// PBSM's partitioning; zero values select the package defaults.
	PBSMTuneFactor        float64
	PBSMTilesPerPartition int
	PBSMMaxRecurse        int
	// PBSMParallel overrides Parallel for PBSM's join phase when
	// non-zero, kept for callers that tuned it before the shared
	// Parallel knob existed. Result pairs now arrive in deterministic
	// (sequential) order at any worker count.
	PBSMParallel int

	// Shards, when > 1, executes the join as that many worker OS
	// processes under the coordinator of package shard: each shard is
	// its own fault domain with a private disk, temp-file registry and
	// governor memory slice, supervised with heartbeats and restarted
	// (or absorbed) on failure. Requires Method PBSM with DupRPM — the
	// Reference Point Method's globally duplicate-free per-partition
	// output is what makes multi-process merge correct — and the shard
	// package linked in (importing it registers the executor). The
	// result set AND its emission order are identical at every shard
	// count. Fields Disk and Trace's I/O attribution do not apply to
	// the worker processes' private disks; I/O is aggregated in
	// Result.IO instead.
	Shards int
	// ShardEndpoints lists resident worker addresses (host:port) for
	// sharded execution: shards then run over the TCP transport against
	// those workers (started with sjworkerd, or sjoin/sjbench
	// -worker-listen), degrading to locally spawned processes — and
	// finally to in-process absorption — when the fleet is unreachable.
	// Requires Shards > 1; empty means local worker processes only.
	ShardEndpoints []string

	// S3JMode selects original or replicated S³J; default ModeReplicate
	// (the paper's improvement). Ignored for PBSM.
	S3JMode s3j.Mode
	// S3JLevels is the number of grid levels; zero selects the default.
	S3JLevels int
	// Curve is the locational-code curve for S³J; default Peano.
	Curve sfc.Curve

	// Disk supplies the simulated device; nil creates a fresh default
	// disk per join. Provide one to share cost accounting across calls.
	Disk *diskio.Disk
	// PageSize, PT and Transfer configure the fresh disk when Disk is
	// nil; zero values select the diskio defaults.
	PageSize int
	PT       float64
	Transfer time.Duration
	// BufPages is the sequential I/O buffer size in pages; zero selects
	// the default.
	BufPages int

	// Trace receives the hierarchical span/counter record of the join:
	// phase spans, I/O deltas, duplicate-elimination counters and fault
	// events. Nil (the default) disables instrumentation; the join then
	// pays only a nil pointer test per instrumentation site. A Recorder
	// observes one disk at a time, so attach a separate Recorder to each
	// concurrently-running join.
	Trace *trace.Recorder

	// Ctx, when non-nil, makes the join cancelable: every long-running
	// loop and every disk request checks it cooperatively, and a canceled
	// join unwinds with a JoinError of kind Canceled (or DeadlineExceeded)
	// naming the phase it died in, having swept all its temp files. Nil
	// (the default) disables cancellation at no cost.
	Ctx context.Context
	// Deadline, when positive, bounds the join's wall time: the join runs
	// under Ctx (or a fresh background context) with this timeout and
	// fails with kind DeadlineExceeded when it expires.
	Deadline time.Duration
	// Governor, when non-nil, admission-controls the join: it must
	// acquire its Memory claim (and a join slot) before starting, queueing
	// while the governor is at capacity — honoring Ctx/Deadline while
	// queued — and failing fast with a JoinError{Phase: "admission"} when
	// the claim alone exceeds the governor's budget. Share one Governor
	// across the joins of one machine.
	Governor *Governor

	// Metrics, when non-nil, publishes live process-lifetime series for
	// this join and every layer under it: disk request/byte/retry/fault
	// counters, governor admission gauges, per-pool scheduler
	// occupancy, method counters (replication copies, RPM tests,
	// duplicates suppressed), shard supervision, and the per-join
	// progress estimator (join.progress.*) behind `sjoin -progress` and
	// the /metrics endpoint. Share ONE Registry per process; because
	// counters are process-lifetime totals, per-join deltas come from
	// Snapshot().Sub(before). The progress gauges describe one join at
	// a time — concurrent joins sharing a registry still get exact
	// counters but an interleaved progress signal. Nil (the default)
	// disables everything at one pointer test per site.
	Metrics *metrics.Registry
}

// Governor re-exports the admission controller of package govern so
// embedding servers need only import core.
type Governor = govern.Governor

// NewGovernor creates an admission controller capping concurrent joins
// and their aggregate memory claim; non-positive values leave the
// respective dimension unlimited.
func NewGovernor(maxJoins int, maxMemory int64) *Governor {
	return govern.NewGovernor(maxJoins, maxMemory)
}

func (c *Config) method() Method {
	if c.Method == "" {
		return PBSM
	}
	return c.Method
}

func (c *Config) disk() *diskio.Disk {
	if c.Disk != nil {
		return c.Disk
	}
	return diskio.NewDisk(c.PageSize, c.PT, c.Transfer)
}

// parallel resolves the worker count: 0 = all processors, otherwise the
// configured value (1 or negative = serial).
func (c *Config) parallel() int {
	if c.Parallel == 0 {
		return runtime.GOMAXPROCS(0)
	}
	return c.Parallel
}

// pbsmParallel honors the legacy PBSM-specific override when set.
func (c *Config) pbsmParallel() int {
	if c.PBSMParallel != 0 {
		return c.PBSMParallel
	}
	return c.parallel()
}

func (c *Config) algorithm() sweep.Kind {
	if c.Algorithm != "" {
		return c.Algorithm
	}
	switch c.method() {
	case S3J:
		return sweep.NestedLoopsKind
	case SSSJ:
		return sweep.TrieKind
	default:
		return sweep.ListKind
	}
}

// Result reports what a join did: result cardinality, I/O activity,
// measured CPU time, and the simulated total runtime in the cost model of
// §2 (CPU + positioning/transfer time of all intermediate I/O; reading
// the inputs and writing the output are free).
type Result struct {
	Method  Method
	Results int64

	IO  diskio.Stats
	CPU time.Duration
	// IOTime is the simulated time of the charged I/O.
	IOTime time.Duration
	// Total is CPU + IOTime, the figure the paper plots as runtime.
	Total time.Duration

	// PBSMStats is populated when Method == PBSM.
	PBSMStats *pbsm.Stats
	// S3JStats is populated when Method == S3J.
	S3JStats *s3j.Stats
	// SSSJStats is populated when Method == SSSJ.
	SSSJStats *sssj.Stats
	// SHJStats is populated when Method == SHJ.
	SHJStats *shj.Stats
}

// Join computes the spatial intersection join of R and S in the filter
// step sense: every pair of KPEs with intersecting rectangles is
// delivered to emit exactly once. The inputs are not modified.
func Join(R, S []geom.KPE, cfg Config, emit func(geom.Pair)) (Result, error) {
	if cfg.Memory <= 0 {
		return Result{}, joinerr.Wrap("core", "config", fmt.Errorf("Config.Memory must be positive, got %d", cfg.Memory))
	}

	// Derive the cancellation context first: the caller's Ctx, a
	// Deadline, or both (the deadline nests inside the caller's
	// context). Input validation below is a per-record scan over
	// arbitrarily large inputs, so it honors the same checkpoints as
	// every other record loop.
	ctx := cfg.Ctx
	if cfg.Deadline > 0 {
		if ctx == nil {
			ctx = context.Background()
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.Deadline)
		defer cancel()
	}
	chk := govern.NewCheck(ctx)

	if err := validateInput("R", R, chk); err != nil {
		return Result{}, joinerr.Wrap("core", "validate", err)
	}
	if err := validateInput("S", S, chk); err != nil {
		return Result{}, joinerr.Wrap("core", "validate", err)
	}

	// Sharded execution delegates to the registered multi-process
	// executor before this process's disk, spans or admission are
	// touched: the shard coordinator performs its own admission (the
	// full Memory claim, then sliced across workers) and its own
	// tracing against cfg.Trace.
	if cfg.Shards > 1 {
		if cfg.method() != PBSM {
			return Result{}, joinerr.Wrap("core", "config",
				fmt.Errorf("Shards=%d requires Method PBSM, got %q", cfg.Shards, cfg.method()))
		}
		if cfg.PBSMDup == pbsm.DupSort {
			return Result{}, joinerr.Wrap("core", "config",
				fmt.Errorf("Shards=%d is incompatible with DupSort: sharded merge relies on duplicate-free-by-construction partition output (DupRPM or DupTLSP)", cfg.Shards))
		}
		if sharder == nil {
			return Result{}, joinerr.Wrap("core", "config",
				fmt.Errorf("Shards=%d but no shard executor is linked in (import spatialjoin/internal/shard)", cfg.Shards))
		}
		cfg.Ctx, cfg.Deadline = ctx, 0
		return sharder(R, S, cfg, emit)
	}
	if len(cfg.ShardEndpoints) > 0 {
		return Result{}, joinerr.Wrap("core", "config",
			fmt.Errorf("ShardEndpoints requires Shards > 1, got Shards=%d", cfg.Shards))
	}

	// Admission comes first: a join that will queue or be rejected must
	// not touch the disk or open spans. The queue wait honors ctx, so a
	// deadline bounds time-to-admission too.
	if cfg.Governor != nil {
		release, aerr := cfg.Governor.Acquire(ctx, cfg.Memory)
		if aerr != nil {
			kind := joinerr.Classify(aerr)
			if errors.Is(aerr, govern.ErrOverCapacity) {
				kind = joinerr.KindAdmission
			}
			return Result{}, joinerr.WrapAs(string(cfg.method()), "admission", kind, aerr)
		}
		defer release()
	}

	disk := cfg.disk()
	if cfg.Disk != nil {
		// A caller-supplied disk may be shared by concurrent Joins, and
		// Result.IO is the delta between two snapshots of its counters —
		// interleaved joins would attribute each other's I/O. Serialize
		// whole joins per shared disk so every delta is self-consistent.
		// Fresh per-join disks (cfg.Disk == nil) skip the lock.
		mu := lockForDisk(cfg.Disk)
		mu.Lock()
		defer mu.Unlock()
	}
	rec := cfg.Trace
	if rec != nil {
		rec.SetIOSource(func() trace.IOStats { return ioSnapshot(disk) })
		disk.SetTracer(rec)
		defer disk.SetTracer(nil)
	}
	if chk != nil {
		// Every disk request now polls the context before touching the
		// device, bounding a canceled join's residual I/O to one request.
		// Joins on a shared disk are serialized above, so the hook cannot
		// observe another join's context.
		disk.SetCancel(chk.Now)
		defer disk.SetCancel(nil)
	}
	// Metrics mirror the tracer attach/detach pattern: the registry is
	// process-lifetime, the disk attachment is per-join (shared disks are
	// serialized above, so detaching on exit never races another join).
	if cfg.Metrics != nil {
		disk.SetMetrics(cfg.Metrics)
		defer disk.SetMetrics(nil)
		if cfg.Governor != nil {
			cfg.Governor.SetMetrics(cfg.Metrics)
		}
	}
	jm := newJoinMetrics(cfg.Metrics)
	jm.begin()
	prog := metrics.NewProgress(cfg.Metrics)
	before := disk.Stats()
	res := Result{Method: cfg.method()}
	root := rec.Begin("join:" + string(res.Method))
	root.AddRecords(int64(len(R) + len(S)))
	defer root.End()
	// The checkpoint count funds the overhead-budget test: per-site cost
	// times this counter must stay within budget. Recorded on every exit.
	defer func() {
		root.Count("cancel.checks", chk.Calls())
		root.Count("cancel.checks.now", chk.NowCalls())
	}()

	// fail routes every error exit through one place so aborted joins
	// leave a trace footprint: a "cancel" instant event naming the dying
	// phase plus a join.aborted counter.
	fail := func(err error) (Result, error) {
		jm.end(0, err)
		if joinerr.IsCanceled(err) {
			phase := ""
			var je *joinerr.JoinError
			if errors.As(err, &je) {
				phase = je.Phase
			}
			rec.Instant("cancel", trace.Attr{Key: "phase", Str: phase})
			root.Count("join.aborted", 1)
		}
		return Result{}, err
	}

	switch res.Method {
	case PBSM:
		st, err := pbsm.Join(R, S, pbsm.Config{
			Disk:              disk,
			Memory:            cfg.Memory,
			Algorithm:         cfg.algorithm(),
			Dup:               cfg.PBSMDup,
			TuneFactor:        cfg.PBSMTuneFactor,
			TilesPerPartition: cfg.PBSMTilesPerPartition,
			MaxRecurse:        cfg.PBSMMaxRecurse,
			Parallel:          cfg.pbsmParallel(),
			Gov:               cfg.Governor,
			BufPages:          cfg.BufPages,
			Trace:             root,
			Cancel:            chk,
			Metrics:           cfg.Metrics,
			Progress:          prog,
		}, emit)
		if err != nil {
			return fail(err)
		}
		res.PBSMStats = &st
		res.Results = st.Results
		res.CPU = st.TotalCPU()
	case S3J:
		st, err := s3j.Join(R, S, s3j.Config{
			Disk:      disk,
			Memory:    cfg.Memory,
			Mode:      cfg.S3JMode,
			Algorithm: cfg.algorithm(),
			Curve:     cfg.Curve,
			Levels:    cfg.S3JLevels,
			BufPages:  cfg.BufPages,
			Parallel:  cfg.parallel(),
			Gov:       cfg.Governor,
			Trace:     root,
			Cancel:    chk,
			Metrics:   cfg.Metrics,
			Progress:  prog,
		}, emit)
		if err != nil {
			return fail(err)
		}
		res.S3JStats = &st
		res.Results = st.Results
		res.CPU = st.TotalCPU()
	case SSSJ:
		st, err := sssj.Join(R, S, sssj.Config{
			Disk:      disk,
			Memory:    cfg.Memory,
			Algorithm: cfg.algorithm(),
			BufPages:  cfg.BufPages,
			Trace:     root,
			Cancel:    chk,
		}, emit)
		if err != nil {
			return fail(err)
		}
		res.SSSJStats = &st
		res.Results = st.Results
		res.CPU = st.TotalCPU()
	case SHJ:
		st, err := shj.Join(R, S, shj.Config{
			Disk:      disk,
			Memory:    cfg.Memory,
			Algorithm: cfg.algorithm(),
			BufPages:  cfg.BufPages,
			Parallel:  cfg.parallel(),
			Gov:       cfg.Governor,
			Trace:     root,
			Cancel:    chk,
			Metrics:   cfg.Metrics,
			Progress:  prog,
		}, emit)
		if err != nil {
			return fail(err)
		}
		res.SHJStats = &st
		res.Results = st.Results
		res.CPU = st.TotalCPU()
	default:
		return fail(joinerr.Wrap("core", "config", fmt.Errorf("unknown method %q", cfg.Method)))
	}

	res.IO = disk.Stats().Sub(before)
	res.IOTime = disk.CostTime(res.IO.CostUnits)
	res.Total = res.CPU + res.IOTime
	root.SetAttr("results", res.Results)
	prog.Done()
	jm.end(res.Results, nil)
	return res, nil
}

// sharder is the multi-process executor package shard installs via
// RegisterSharder; a function variable (not an import) because the
// shard package imports core for its Config/Result types — the same
// inversion that keeps core free of process-management code.
var sharder func(R, S []geom.KPE, cfg Config, emit func(geom.Pair)) (Result, error)

// RegisterSharder installs the sharded executor behind Config.Shards.
// Called from the shard package's init; last registration wins.
func RegisterSharder(fn func(R, S []geom.KPE, cfg Config, emit func(geom.Pair)) (Result, error)) {
	sharder = fn
}

// joinLocks serializes Joins sharing one caller-supplied Disk (see
// Join). Entries are one mutex per distinct shared disk and are never
// removed; callers supply a handful of long-lived disks, not an
// unbounded stream.
var joinLocks sync.Map // *diskio.Disk -> *sync.Mutex

func lockForDisk(d *diskio.Disk) *sync.Mutex {
	mu, _ := joinLocks.LoadOrStore(d, &sync.Mutex{})
	return mu.(*sync.Mutex)
}

// ioSnapshot adapts the disk's counters to the trace layer's
// storage-agnostic snapshot type.
func ioSnapshot(d *diskio.Disk) trace.IOStats {
	s := d.Stats()
	ps := int64(d.PageSize())
	return trace.IOStats{
		ReadRequests:  s.ReadRequests,
		WriteRequests: s.WriteRequests,
		PagesRead:     s.PagesRead,
		PagesWritten:  s.PagesWritten,
		BytesRead:     s.PagesRead * ps,
		BytesWritten:  s.PagesWritten * ps,
		Retries:       s.Retries,
		CostUnits:     s.CostUnits,
	}
}

// validateInput rejects geometry no join method can process correctly:
// non-finite coordinates break every comparison-based sweep and the
// grid-cell arithmetic (NaN compares false with everything, so such a
// rectangle silently joins nothing or everything depending on the
// method), and inverted rectangles would make replication and the
// reference-point test disagree about coverage. Rejecting them up front
// turns a silent wrong answer into a descriptive error.
func validateInput(rel string, ks []geom.KPE, chk *govern.Check) error {
	st := chk.Stride()
	for i := range ks {
		if err := st.Point(); err != nil {
			return err
		}
		r := ks[i].Rect
		for _, v := range [...]float64{r.XL, r.YL, r.XH, r.YH} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("invalid input %s[%d] (id %d): rectangle [%g,%g]x[%g,%g] has a non-finite coordinate",
					rel, i, ks[i].ID, r.XL, r.XH, r.YL, r.YH)
			}
		}
		if r.XL > r.XH || r.YL > r.YH {
			return fmt.Errorf("invalid input %s[%d] (id %d): inverted rectangle [%g,%g]x[%g,%g] (low edge beyond high edge)",
				rel, i, ks[i].ID, r.XL, r.XH, r.YL, r.YH)
		}
	}
	return nil
}

// Collect runs Join and gathers all result pairs in memory, convenient
// for small joins and tests.
func Collect(R, S []geom.KPE, cfg Config) ([]geom.Pair, Result, error) {
	var pairs []geom.Pair
	res, err := Join(R, S, cfg, func(p geom.Pair) { pairs = append(pairs, p) })
	return pairs, res, err
}

// Iterator delivers join results one at a time through the
// open-next-close interface [Gra 93], allowing the join to feed an
// operator tree. With PBSM+RPM (and S³J) the first result arrives as soon
// as the first partition pair is joined; with the original PBSM
// (DupSort), Next blocks until the final sort phase begins output — the
// pipelining difference §3.1 of the paper describes.
type Iterator struct {
	pairs  chan geom.Pair
	done   chan struct{}
	result Result
	err    error
	fin    chan struct{}
}

// joinFn is the join entry the producer goroutine runs; a package
// variable so tests can substitute a misbehaving join.
var joinFn = Join

// Open starts the join and returns an iterator over its results. Close
// must be called to release the producing goroutine.
//
// The producer goroutine is panic-safe: a panic anywhere inside the join
// is recovered and surfaced through Err instead of crashing the process,
// and the iterator still terminates cleanly.
func Open(R, S []geom.KPE, cfg Config) *Iterator {
	it := &Iterator{
		pairs: make(chan geom.Pair, 64),
		done:  make(chan struct{}),
		fin:   make(chan struct{}),
	}
	// Derive the cancellation context here, once, and hand the derived
	// context to the join (zeroing Deadline so Join does not derive a
	// second one): the producer's emit path must honor the same context,
	// or a canceled join with an absent consumer would block forever on a
	// full pairs channel.
	ctx := cfg.Ctx
	var cancel context.CancelFunc
	if cfg.Deadline > 0 {
		if ctx == nil {
			ctx = context.Background()
		}
		ctx, cancel = context.WithTimeout(ctx, cfg.Deadline)
		cfg.Ctx, cfg.Deadline = ctx, 0
	}
	var ctxDone <-chan struct{}
	if ctx != nil {
		ctxDone = ctx.Done()
	}
	go func() {
		if cancel != nil {
			defer cancel()
		}
		defer close(it.fin)
		defer close(it.pairs)
		// Registered last so it runs first: err must be set before the
		// channel closes wake up the consumer.
		defer func() {
			if r := recover(); r != nil {
				it.err = fmt.Errorf("core: join panicked: %v", r)
			}
		}()
		res, err := joinFn(R, S, cfg, func(p geom.Pair) {
			select {
			case it.pairs <- p:
			case <-it.done:
				// Consumer closed early: discard remaining results.
			case <-ctxDone:
				// Canceled: the join's own checkpoints unwind it; just
				// stop delivering.
			}
		})
		it.result, it.err = res, err
	}()
	return it
}

// Next returns the next result pair; ok is false when the join has
// finished or failed (check Err).
func (it *Iterator) Next() (p geom.Pair, ok bool) {
	p, ok = <-it.pairs
	return p, ok
}

// Close releases the iterator. It is safe to call at any time, also
// before exhausting the results.
func (it *Iterator) Close() {
	select {
	case <-it.done:
	default:
		close(it.done)
	}
	// Drain so the producer can finish.
	for range it.pairs {
	}
	<-it.fin
}

// Err returns the join error, valid after the iterator is exhausted or
// closed.
func (it *Iterator) Err() error {
	<-it.fin
	return it.err
}

// Result returns the run statistics, valid after the iterator is
// exhausted or closed.
func (it *Iterator) Result() Result {
	<-it.fin
	return it.result
}
