package core

import (
	"fmt"
	"sort"
	"testing"

	"spatialjoin/internal/datagen"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/pbsm"
	"spatialjoin/internal/s3j"
	"spatialjoin/internal/sweep"
)

// naiveJoin is the quadratic ground-truth oracle.
func naiveJoin(R, S []geom.KPE) []geom.Pair {
	var out []geom.Pair
	for _, r := range R {
		for _, s := range S {
			if r.Rect.Intersects(s.Rect) {
				out = append(out, geom.Pair{R: r.ID, S: s.ID})
			}
		}
	}
	sortPairs(out)
	return out
}

func sortPairs(ps []geom.Pair) {
	sort.Slice(ps, func(i, j int) bool { return ps[i].Less(ps[j]) })
}

// checkJoin runs cfg on (R, S) and compares the result set against the
// oracle, also asserting duplicate-freeness.
func checkJoin(t *testing.T, R, S []geom.KPE, cfg Config) Result {
	t.Helper()
	want := naiveJoin(R, S)
	got, res, err := Collect(R, S, cfg)
	if err != nil {
		t.Fatalf("Join failed: %v", err)
	}
	seen := make(map[geom.Pair]bool, len(got))
	for _, p := range got {
		if seen[p] {
			t.Fatalf("duplicate pair %v in response set", p)
		}
		seen[p] = true
	}
	sortPairs(got)
	if len(got) != len(want) {
		t.Fatalf("got %d results, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("result %d: got %v, want %v", i, got[i], want[i])
		}
	}
	if res.Results != int64(len(want)) {
		t.Fatalf("Result.Results = %d, want %d", res.Results, len(want))
	}
	return res
}

// configsUnderTest enumerates every method/algorithm/dup-mode combination
// the library offers.
func configsUnderTest(memory int64) []Config {
	var cfgs []Config
	for _, alg := range []sweep.Kind{sweep.NestedLoopsKind, sweep.ListKind, sweep.TrieKind} {
		for _, dup := range []pbsm.DupMethod{pbsm.DupRPM, pbsm.DupSort, pbsm.DupTLSP} {
			cfgs = append(cfgs, Config{Method: PBSM, Memory: memory, Algorithm: alg, PBSMDup: dup})
		}
		for _, mode := range []s3j.Mode{s3j.ModeOriginal, s3j.ModeReplicate} {
			cfgs = append(cfgs, Config{Method: S3J, Memory: memory, Algorithm: alg, S3JMode: mode})
		}
		cfgs = append(cfgs, Config{Method: SHJ, Memory: memory, Algorithm: alg})
		if alg != sweep.NestedLoopsKind { // SSSJ sweeps the whole space: no nested loops
			cfgs = append(cfgs, Config{Method: SSSJ, Memory: memory, Algorithm: alg})
		}
	}
	return cfgs
}

func configName(c Config) string {
	switch c.Method {
	case S3J:
		return fmt.Sprintf("s3j/%s/%s", c.S3JMode, c.Algorithm)
	case SSSJ, SHJ:
		return fmt.Sprintf("%s/%s", c.Method, c.Algorithm)
	default:
		return fmt.Sprintf("pbsm/%s/%s", c.PBSMDup, c.Algorithm)
	}
}

func TestAllMethodsMatchOracleSmall(t *testing.T) {
	R := datagen.Uniform(1, 300, 0.05)
	S := datagen.Uniform(2, 300, 0.05)
	for _, cfg := range configsUnderTest(8 * 1024) { // tiny memory: forces partitioning
		cfg := cfg
		t.Run(configName(cfg), func(t *testing.T) {
			checkJoin(t, R, S, cfg)
		})
	}
}

func TestAllMethodsMatchOracleClustered(t *testing.T) {
	R := datagen.LARR(7, 800).KPEs
	S := datagen.LAST(8, 800).KPEs
	for _, cfg := range configsUnderTest(16 * 1024) {
		cfg := cfg
		t.Run(configName(cfg), func(t *testing.T) {
			checkJoin(t, R, S, cfg)
		})
	}
}

func TestSelfJoinMatchesOracle(t *testing.T) {
	R := datagen.Uniform(3, 400, 0.03)
	for _, cfg := range configsUnderTest(8 * 1024) {
		cfg := cfg
		t.Run(configName(cfg), func(t *testing.T) {
			checkJoin(t, R, R, cfg)
		})
	}
}

func TestLargeMemorySinglePartition(t *testing.T) {
	R := datagen.Uniform(4, 200, 0.05)
	S := datagen.Uniform(5, 200, 0.05)
	for _, cfg := range configsUnderTest(64 << 20) { // everything fits in memory
		cfg := cfg
		t.Run(configName(cfg), func(t *testing.T) {
			checkJoin(t, R, S, cfg)
		})
	}
}

func TestEmptyInputs(t *testing.T) {
	R := datagen.Uniform(6, 50, 0.05)
	for _, cfg := range configsUnderTest(8 * 1024) {
		cfg := cfg
		t.Run(configName(cfg), func(t *testing.T) {
			checkJoin(t, nil, R, cfg)
			checkJoin(t, R, nil, cfg)
			checkJoin(t, nil, nil, cfg)
		})
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Join(nil, nil, Config{}, func(geom.Pair) {}); err == nil {
		t.Fatal("want error for zero Memory")
	}
	if _, err := Join(nil, nil, Config{Memory: 1 << 20, Method: "bogus"}, func(geom.Pair) {}); err == nil {
		t.Fatal("want error for unknown method")
	}
}

func TestIteratorDeliversAllResults(t *testing.T) {
	R := datagen.Uniform(9, 300, 0.05)
	S := datagen.Uniform(10, 300, 0.05)
	want := naiveJoin(R, S)
	it := Open(R, S, Config{Method: PBSM, Memory: 8 * 1024})
	var got []geom.Pair
	for {
		p, ok := it.Next()
		if !ok {
			break
		}
		got = append(got, p)
	}
	it.Close()
	if err := it.Err(); err != nil {
		t.Fatalf("iterator error: %v", err)
	}
	sortPairs(got)
	if len(got) != len(want) {
		t.Fatalf("iterator yielded %d pairs, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("pair %d: got %v want %v", i, got[i], want[i])
		}
	}
	if r := it.Result(); r.Results != int64(len(want)) {
		t.Fatalf("Result.Results = %d, want %d", r.Results, len(want))
	}
}

func TestIteratorWorksForEveryMethod(t *testing.T) {
	R := datagen.Uniform(15, 200, 0.05)
	S := datagen.Uniform(16, 200, 0.05)
	want := int64(len(naiveJoin(R, S)))
	for _, m := range []Method{PBSM, S3J, SSSJ, SHJ} {
		it := Open(R, S, Config{Method: m, Memory: 8 * 1024})
		var n int64
		for {
			if _, ok := it.Next(); !ok {
				break
			}
			n++
		}
		it.Close()
		if err := it.Err(); err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if n != want {
			t.Fatalf("%s: iterator yielded %d, want %d", m, n, want)
		}
	}
}

func TestIteratorEarlyClose(t *testing.T) {
	R := datagen.Uniform(11, 500, 0.08)
	S := datagen.Uniform(12, 500, 0.08)
	it := Open(R, S, Config{Method: PBSM, Memory: 8 * 1024})
	if _, ok := it.Next(); !ok {
		t.Fatal("expected at least one result")
	}
	it.Close() // must not deadlock
	if err := it.Err(); err != nil {
		t.Fatalf("unexpected error after early close: %v", err)
	}
}

func TestStatsArePopulated(t *testing.T) {
	R := datagen.Uniform(13, 400, 0.05)
	S := datagen.Uniform(14, 400, 0.05)

	_, res, err := Collect(R, S, Config{Method: PBSM, Memory: 8 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	if res.PBSMStats == nil || res.S3JStats != nil {
		t.Fatal("PBSM result must carry PBSMStats only")
	}
	if res.PBSMStats.P < 2 {
		t.Fatalf("expected multiple partitions at 8KB memory, got P=%d", res.PBSMStats.P)
	}
	if res.IO.PagesWritten == 0 || res.IO.PagesRead == 0 {
		t.Fatal("partitioned join must perform I/O")
	}
	if res.Total < res.IOTime || res.Total < res.CPU {
		t.Fatal("Total must dominate both components")
	}

	_, res, err = Collect(R, S, Config{Method: S3J, Memory: 8 * 1024, S3JMode: s3j.ModeReplicate})
	if err != nil {
		t.Fatal(err)
	}
	if res.S3JStats == nil || res.PBSMStats != nil {
		t.Fatal("S3J result must carry S3JStats only")
	}
	if res.S3JStats.CopiesR <= int64(len(R))/2 {
		t.Fatalf("implausible replication count %d", res.S3JStats.CopiesR)
	}
}
