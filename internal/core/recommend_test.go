package core

import (
	"testing"

	"spatialjoin/internal/datagen"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/sweep"
)

func TestRecommendFollowsFigure5Crossover(t *testing.T) {
	const n = 10000
	input := int64(2*n) * geom.KPESize
	small := Recommend(n, n, input/10) // 10% of input: small partitions
	if small.Algorithm != sweep.ListKind {
		t.Fatalf("small memory must pick the list sweep, got %s", small.Algorithm)
	}
	large := Recommend(n, n, input) // everything fits
	if large.Algorithm != sweep.TrieKind {
		t.Fatalf("large memory must pick the trie sweep, got %s", large.Algorithm)
	}
	for _, cfg := range []Config{small, large} {
		if cfg.Method != PBSM {
			t.Fatalf("the paper's conclusion is PBSM, got %s", cfg.Method)
		}
		if cfg.Memory <= 0 {
			t.Fatal("memory must be carried through")
		}
	}
}

func TestRecommendedConfigActuallyRuns(t *testing.T) {
	R := datagen.Uniform(1, 400, 0.05)
	S := datagen.Uniform(2, 400, 0.05)
	for _, m := range []int64{4 << 10, 4 << 20} {
		cfg := Recommend(len(R), len(S), m)
		checkJoin(t, R, S, cfg)
	}
}

func TestRecommendDegenerate(t *testing.T) {
	cfg := Recommend(0, 0, 1<<20)
	if cfg.Method != PBSM || cfg.Algorithm == "" {
		t.Fatalf("degenerate inputs must still yield a valid config: %+v", cfg)
	}
}
