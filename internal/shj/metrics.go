package shj

import "spatialjoin/internal/metrics"

// Metric names owned by package shj: hash-join redundancy accounting
// as live process-lifetime counters.
const (
	// metReplicationCopies counts probe-side records written (≥ |S|
	// due to replication into overlapping bucket extents).
	metReplicationCopies = "shj.replication.copies"
	// metOrphans counts S rectangles overlapping no bucket extent.
	metOrphans = "shj.orphans"
	// metOverflows counts bucket pairs joined over the memory budget.
	metOverflows = "shj.overflows"
	// metBucketsDone counts joinable bucket pairs completed.
	metBucketsDone = "shj.buckets.done"
)

// publishMetrics adds one finished join's totals to the process-
// lifetime counters; a no-op without a registry.
func publishMetrics(m *metrics.Registry, st *Stats) {
	if m == nil {
		return
	}
	m.Counter(metReplicationCopies).Add(st.CopiesS)
	m.Counter(metOrphans).Add(st.Orphans)
	m.Counter(metOverflows).Add(int64(st.Overflows))
}

// bucketsDoneCounter resolves the live buckets-done counter (nil-safe
// handle; nil without a registry).
func bucketsDoneCounter(m *metrics.Registry) *metrics.Counter {
	return m.Counter(metBucketsDone)
}
