package shj

import (
	"testing"
	"time"

	"spatialjoin/internal/diskio"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/recfile"
)

// TestTornBucketFilesNeverDropPairs: with a single bucket holding one R
// and one intersecting S rectangle, exactly two bucket-file flushes hit
// the device, so a torn-write sweep covers every tear combination. A
// tear of the S file leaves it below one frame header — length-derived
// NumKPEs reports zero — and the join used to skip the bucket silently,
// returning zero pairs. Every run must now either produce the exact
// result or fail with a corruption error.
func TestTornBucketFilesNeverDropPairs(t *testing.T) {
	R := []geom.KPE{{ID: 1, Rect: geom.NewRect(0.1, 0.1, 0.3, 0.3)}}
	S := []geom.KPE{{ID: 2, Rect: geom.NewRect(0.2, 0.2, 0.4, 0.4)}}

	var torn, failed int64
	for seed := int64(1); seed <= 40; seed++ {
		d := diskio.NewDisk(256, 5, time.Microsecond)
		fp := diskio.NewFaultPolicy(diskio.FaultConfig{Seed: seed, TornWriteRate: 0.5})
		d.SetFaultPolicy(fp)
		var got []geom.Pair
		_, err := Join(R, S, Config{Disk: d, Memory: 1 << 20}, func(p geom.Pair) { got = append(got, p) })
		torn += fp.Stats().TornWrites
		if err != nil {
			if !recfile.IsCorrupt(err) {
				t.Fatalf("seed %d: want a corruption error, got %v", seed, err)
			}
			failed++
			continue
		}
		if len(got) != 1 {
			t.Fatalf("seed %d: silent wrong answer: %d pairs, want 1 (%d torn writes)",
				seed, len(got), fp.Stats().TornWrites)
		}
	}
	if torn == 0 || failed == 0 {
		t.Fatalf("sweep vacuous: torn=%d, cleanFailures=%d", torn, failed)
	}
}
