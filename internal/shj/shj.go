// Package shj implements the Spatial Hash Join of Lo & Ravishankar
// [LR 96], the partition-based competitor the paper's related work
// contrasts with PBSM: where PBSM replicates *both* relations across a
// fixed grid, the spatial hash join samples the build relation R to seed
// data-driven bucket extents, assigns every R rectangle to exactly ONE
// bucket (growing that bucket's extent), and replicates only the probe
// relation S into every bucket whose extent its rectangle intersects.
//
// Because each R rectangle lives in exactly one bucket, a result pair
// (r, s) can only be produced in r's bucket — the response set is
// duplicate-free without any reference-point test or sort, at the price
// of bucket extents that overlap and a probe-side replication that grows
// with them. Experiments in [KS 97] found it comparable to PBSM.
package shj

import (
	"fmt"
	"math"
	"sort"
	"time"

	"spatialjoin/internal/diskio"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/govern"
	"spatialjoin/internal/joinerr"
	"spatialjoin/internal/metrics"
	"spatialjoin/internal/recfile"
	"spatialjoin/internal/sched"
	"spatialjoin/internal/sweep"
	"spatialjoin/internal/trace"
)

// Phase indexes the per-phase statistics.
type Phase int

// The three SHJ phases.
const (
	PhaseBuild          Phase = iota // sample seeds, partition R
	PhaseProbePartition              // replicate S into overlapping buckets
	PhaseJoin                        // join bucket pairs in memory
	numPhases
)

// String names the phase.
func (p Phase) String() string {
	switch p {
	case PhaseBuild:
		return "build"
	case PhaseProbePartition:
		return "probe-partition"
	case PhaseJoin:
		return "join"
	}
	return fmt.Sprintf("phase(%d)", int(p))
}

// Config controls a spatial hash join.
type Config struct {
	// Disk is the simulated device for the bucket files. Required.
	Disk *diskio.Disk
	// Memory is the byte budget: bucket pairs are sized to fit. Required.
	Memory int64
	// Algorithm is the in-memory join for bucket pairs; default list
	// sweep.
	Algorithm sweep.Kind
	// BufPages is the per-stream sequential buffer size in pages.
	// Values < 1 select 4.
	BufPages int
	// Trace is the parent span phase spans nest under; nil disables
	// instrumentation.
	Trace *trace.Span
	// Cancel is the join's cancellation checkpoint; nil disables
	// cancellation.
	Cancel *govern.Check
	// Parallel joins this many bucket pairs concurrently in the join
	// phase (values < 2 keep it sequential) on the shared scheduler.
	// Each worker uses a private internal algorithm; results are
	// buffered per bucket and released in bucket order, so the emitted
	// sequence is identical to a sequential run's.
	Parallel int
	// Gov, when non-nil, admission-controls the memory the extra
	// parallel workers claim beyond the join's own admission (one bucket
	// pair's working set each).
	Gov *govern.Governor
	// Metrics, when non-nil, publishes live counters (replication
	// copies, orphans, overflows, buckets completed) and feeds the
	// per-pool scheduler series.
	Metrics *metrics.Registry
	// Progress, when non-nil, receives record-weighted bucket
	// completions for the percent-complete/ETA estimator.
	Progress *metrics.Progress
}

func (c *Config) bufPages() int {
	if c.BufPages < 1 {
		return 4
	}
	return c.BufPages
}

func (c *Config) workers() int {
	if c.Parallel < 2 {
		return 1
	}
	return c.Parallel
}

// Stats reports what a spatial hash join did.
type Stats struct {
	Buckets   int
	Results   int64
	CopiesS   int64 // probe-side records written (≥ |S| due to replication)
	Orphans   int64 // S rectangles overlapping no bucket extent (cannot join)
	Tests     int64
	Touches   int64 // sweep status node touches (see sweep.Algorithm)
	Overflows int   // bucket pairs exceeding the memory budget (joined anyway)

	PhaseIO  [numPhases]diskio.Stats
	PhaseCPU [numPhases]time.Duration
}

// TotalIO sums the per-phase I/O statistics.
func (s *Stats) TotalIO() diskio.Stats {
	var t diskio.Stats
	for i := range s.PhaseIO {
		t.Add(s.PhaseIO[i])
	}
	return t
}

// TotalCPU sums the per-phase CPU times.
func (s *Stats) TotalCPU() time.Duration {
	var t time.Duration
	for _, d := range s.PhaseCPU {
		t += d
	}
	return t
}

// ReplicationRateS returns probe copies / |S|.
func (s *Stats) ReplicationRateS(ns int) float64 {
	if ns == 0 {
		return 0
	}
	return float64(s.CopiesS) / float64(ns)
}

// bucket is one hash bucket: a data-driven extent plus its two files.
type bucket struct {
	extent geom.Rect
	seeded bool
	nR     int
	fR, fS *diskio.File
	wR, wS *recfile.KPEWriter
}

// Join computes the spatial intersection join of R (build side) and S
// (probe side), delivering each result pair exactly once to emit.
func Join(R, S []geom.KPE, cfg Config, emit func(geom.Pair)) (Stats, error) {
	if cfg.Disk == nil {
		return Stats{}, joinerr.Wrap("shj", "config", fmt.Errorf("Config.Disk is required"))
	}
	if cfg.Memory <= 0 {
		return Stats{}, joinerr.Wrap("shj", "config", fmt.Errorf("Config.Memory must be positive, got %d", cfg.Memory))
	}
	var st Stats
	alg := sweep.New(cfg.Algorithm)

	if len(R) == 0 || len(S) == 0 {
		return st, nil
	}

	// One sweep covers every exit path, so no bucket file outlives the
	// join — success, failure or cancellation alike.
	rg := cfg.Disk.NewRegistry()
	defer rg.Sweep()

	// Bucket count: like PBSM's formula (1), size bucket pairs for the
	// memory budget, assuming S distributes like R.
	n := int(math.Ceil(1.25 * float64(int64(len(R)+len(S))*geom.KPESize) / float64(cfg.Memory)))
	if n < 1 {
		n = 1
	}
	st.Buckets = n

	// Build phase: seed bucket extents from a systematic sample of R
	// (every len(R)/n-th rectangle, spreading seeds across the data's own
	// distribution), then assign each R rectangle to the bucket whose
	// extent needs the least enlargement.
	t0, io0 := time.Now(), cfg.Disk.Stats()
	sp := cfg.Trace.Child(PhaseBuild.String())
	sp.AddRecords(int64(len(R)))
	sp.SetAttr("buckets", int64(n))
	buckets := make([]*bucket, n)
	stride := len(R) / n
	if stride < 1 {
		stride = 1
	}
	for i := range buckets {
		b := &bucket{fR: rg.Create(), fS: rg.Create()}
		buf := bufPagesFor(cfg, 2*n)
		b.wR = recfile.NewKPEWriter(b.fR, buf)
		b.wS = recfile.NewKPEWriter(b.fS, buf)
		if seedIdx := i * stride; seedIdx < len(R) {
			b.extent = R[seedIdx].Rect
			b.seeded = true
		}
		buckets[i] = b
	}
	var err error
	chk := cfg.Cancel.Stride()
	for i := range R {
		if err = chk.Point(); err != nil {
			break
		}
		b := chooseBucket(buckets, R[i].Rect)
		b.extent = b.extent.Union(R[i].Rect)
		b.nR++
		if err = b.wR.Write(R[i]); err != nil {
			break
		}
	}
	if err == nil {
		for _, b := range buckets {
			if err = b.wR.Flush(); err != nil {
				break
			}
		}
	}
	sp.End()
	st.PhaseCPU[PhaseBuild] = time.Since(t0)
	st.PhaseIO[PhaseBuild] = cfg.Disk.Stats().Sub(io0)
	if err != nil {
		return st, joinerr.Wrap("shj", PhaseBuild.String(), err)
	}

	// Probe partition phase: replicate each S rectangle into every bucket
	// whose (now final) extent it intersects. Rectangles overlapping no
	// extent cannot join any R rectangle and are dropped (counted).
	t0, io0 = time.Now(), cfg.Disk.Stats()
	sp = cfg.Trace.Child(PhaseProbePartition.String())
	sp.AddRecords(int64(len(S)))
	chk = cfg.Cancel.Stride()
	for i := range S {
		if err = chk.Point(); err != nil {
			break
		}
		hit := false
		for _, b := range buckets {
			if b.nR > 0 && b.extent.Intersects(S[i].Rect) {
				if err = b.wS.Write(S[i]); err != nil {
					break
				}
				st.CopiesS++
				hit = true
			}
		}
		if err != nil {
			break
		}
		if !hit {
			st.Orphans++
		}
	}
	if err == nil {
		for _, b := range buckets {
			if err = b.wS.Flush(); err != nil {
				break
			}
		}
	}
	sp.SetAttr("copies", st.CopiesS)
	sp.SetAttr("orphans", st.Orphans)
	sp.End()
	st.PhaseCPU[PhaseProbePartition] = time.Since(t0)
	st.PhaseIO[PhaseProbePartition] = cfg.Disk.Stats().Sub(io0)
	if err != nil {
		return st, joinerr.Wrap("shj", PhaseProbePartition.String(), err)
	}

	// Join phase: each bucket pair in memory. No duplicate handling is
	// needed — every R rectangle exists exactly once. A serial pre-scan
	// classifies the buckets — skipping (and tear-verifying) the empty
	// ones, counting overflows — so the joinable pairs become
	// independent units on the shared scheduler; per-worker algorithms
	// keep the sweep state private and the collector releases results in
	// bucket order, identical to a sequential run's.
	t0, io0 = time.Now(), cfg.Disk.Stats()
	sp = cfg.Trace.Child(PhaseJoin.String())
	var units []*bucket
	var unitWeight []float64
	for _, b := range buckets {
		// A bucket pair is an expensive unit, so poll immediately:
		// cancellation latency is bounded by one pair, not 256.
		if err = cfg.Cancel.Now(); err != nil {
			break
		}
		nS := recfile.NumKPEs(b.fS)
		if cfg.Trace != nil {
			cfg.Trace.Observe("shj.bucket.fill", float64(int64(b.nR)+nS))
		}
		if b.nR == 0 || nS == 0 {
			// nR is tracked in memory, but nS derives from the file
			// length: a torn write can shrink the bucket's S file below
			// one frame header and masquerade as empty, so verify
			// before skipping. An empty R bucket received no S copies
			// and can contribute no pairs regardless.
			if b.nR > 0 && nS == 0 {
				if err = recfile.VerifyEmptyKPEs(b.fS, cfg.bufPages()); err != nil {
					break
				}
			}
			continue
		}
		if (int64(b.nR)+nS)*geom.KPESize > cfg.Memory {
			st.Overflows++
		}
		units = append(units, b)
		unitWeight = append(unitWeight, float64(int64(b.nR)+nS))
	}
	// The joinable bucket pairs, record-weighted, are the planned cost.
	total := 0.0
	for _, w := range unitWeight {
		total += w
	}
	cfg.Progress.SetTotal(total)
	if err == nil {
		workers := cfg.workers()
		algs := make([]sweep.Algorithm, workers)
		algs[0] = alg
		for w := 1; w < workers; w++ {
			algs[w] = sweep.New(cfg.Algorithm)
		}
		col := sched.NewCollector(len(units), func(p geom.Pair) {
			st.Results++
			emit(p)
		})
		recs := make([]int64, len(units))
		bucketsDone := bucketsDoneCounter(cfg.Metrics)
		err = sched.Run(len(units), sched.Options{
			Workers: workers,
			Name:    "bucket-worker",
			Span:    sp,
			Cancel:  cfg.Cancel,
			Gov:     cfg.Gov,
			UnitMem: cfg.Memory,
			Metrics: cfg.Metrics,
		}, func(w, i int) error {
			defer col.Done(i)
			b := units[i]
			rs, uerr := recfile.ReadAllKPEs(b.fR, cfg.bufPages())
			if uerr != nil {
				return uerr
			}
			ss, uerr := recfile.ReadAllKPEs(b.fS, cfg.bufPages())
			if uerr != nil {
				return uerr
			}
			recs[i] = int64(len(rs) + len(ss))
			algs[w].Join(rs, ss, func(r, s geom.KPE) {
				col.Emit(i, geom.Pair{R: r.ID, S: s.ID})
			})
			bucketsDone.Inc()
			cfg.Progress.Add(unitWeight[i])
			return nil
		})
		// The span is not safe for concurrent AddRecords, so per-unit
		// record counts accumulate in unit slots and post here.
		for _, n := range recs {
			sp.AddRecords(n)
		}
		for _, a := range algs {
			st.Tests += a.Tests()
			st.Touches += a.Touches()
		}
	}
	sp.End()
	st.PhaseCPU[PhaseJoin] = time.Since(t0)
	st.PhaseIO[PhaseJoin] = cfg.Disk.Stats().Sub(io0)
	if err != nil {
		return st, joinerr.Wrap("shj", PhaseJoin.String(), err)
	}
	if t := cfg.Trace; t != nil {
		t.Count("shj.replication.copies", st.CopiesS)
		t.Count("shj.orphans", st.Orphans)
		t.Count("shj.sweep.tests", st.Tests)
		t.Count("shj.sweep.touches."+alg.Name(), st.Touches)
		t.Count("shj.overflows", int64(st.Overflows))
	}
	publishMetrics(cfg.Metrics, &st)
	return st, nil
}

// chooseBucket returns the bucket whose extent needs the least
// enlargement to take r, preferring smaller extents on ties and unseeded
// buckets last.
func chooseBucket(buckets []*bucket, r geom.Rect) *bucket {
	var best *bucket
	bestEnl, bestArea := math.Inf(1), math.Inf(1)
	for _, b := range buckets {
		if !b.seeded {
			continue
		}
		enl := b.extent.Union(r).Area() - b.extent.Area()
		area := b.extent.Area()
		if enl < bestEnl || (enl == bestEnl && area < bestArea) {
			best, bestEnl, bestArea = b, enl, area
		}
	}
	if best == nil {
		// No seeded bucket (degenerate small input): seed the first.
		best = buckets[0]
		best.extent = r
		best.seeded = true
	}
	return best
}

// bufPagesFor sizes per-stream buffers against the memory budget like
// the other partition-based joins do.
func bufPagesFor(cfg Config, streams int) int {
	if streams < 1 {
		streams = 1
	}
	per := int(cfg.Memory / int64(streams) / int64(cfg.Disk.PageSize()))
	if per < 1 {
		return 1
	}
	if per > cfg.bufPages() {
		return cfg.bufPages()
	}
	return per
}

// BucketExtents exposes the final bucket extents of a build-side
// partitioning for inspection and tests: it replays only the build phase.
func BucketExtents(R []geom.KPE, n int) []geom.Rect {
	if n < 1 || len(R) == 0 {
		return nil
	}
	type eb struct {
		extent geom.Rect
		seeded bool
	}
	ebs := make([]eb, n)
	stride := len(R) / n
	if stride < 1 {
		stride = 1
	}
	for i := range ebs {
		if idx := i * stride; idx < len(R) {
			ebs[i] = eb{extent: R[idx].Rect, seeded: true}
		}
	}
	//lint:ignore checkpoint inspection/test helper outside any join run; it has no Config and no cancellation plumbing to checkpoint against
	for i := range R {
		best, bestEnl, bestArea := -1, math.Inf(1), math.Inf(1)
		for j := range ebs {
			if !ebs[j].seeded {
				continue
			}
			enl := ebs[j].extent.Union(R[i].Rect).Area() - ebs[j].extent.Area()
			area := ebs[j].extent.Area()
			if enl < bestEnl || (enl == bestEnl && area < bestArea) {
				best, bestEnl, bestArea = j, enl, area
			}
		}
		if best < 0 {
			best = 0
			ebs[0] = eb{extent: R[i].Rect, seeded: true}
			continue
		}
		ebs[best].extent = ebs[best].extent.Union(R[i].Rect)
	}
	out := make([]geom.Rect, 0, n)
	for _, e := range ebs {
		if e.seeded {
			out = append(out, e.extent)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].XL != out[j].XL {
			return out[i].XL < out[j].XL
		}
		return out[i].YL < out[j].YL
	})
	return out
}
