package shj

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"spatialjoin/internal/datagen"
	"spatialjoin/internal/diskio"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/sweep"
)

func newDisk() *diskio.Disk { return diskio.NewDisk(1024, 10, time.Millisecond) }

func naive(rs, ss []geom.KPE) []geom.Pair {
	var out []geom.Pair
	for _, r := range rs {
		for _, s := range ss {
			if r.Rect.Intersects(s.Rect) {
				out = append(out, geom.Pair{R: r.ID, S: s.ID})
			}
		}
	}
	sortPairs(out)
	return out
}

func sortPairs(ps []geom.Pair) {
	sort.Slice(ps, func(i, j int) bool { return ps[i].Less(ps[j]) })
}

func run(t *testing.T, R, S []geom.KPE, cfg Config) ([]geom.Pair, Stats) {
	t.Helper()
	if cfg.Disk == nil {
		cfg.Disk = newDisk()
	}
	var got []geom.Pair
	st, err := Join(R, S, cfg, func(p geom.Pair) { got = append(got, p) })
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	return got, st
}

func TestConfigErrors(t *testing.T) {
	if _, err := Join(nil, nil, Config{Memory: 1}, nil); err == nil {
		t.Error("nil disk must error")
	}
	if _, err := Join(nil, nil, Config{Disk: newDisk()}, nil); err == nil {
		t.Error("zero memory must error")
	}
}

func TestMatchesOracle(t *testing.T) {
	R := datagen.LARR(1, 1200).KPEs
	S := datagen.LAST(2, 1200).KPEs
	want := naive(R, S)
	for _, alg := range []sweep.Kind{sweep.NestedLoopsKind, sweep.ListKind, sweep.TrieKind} {
		got, _ := run(t, R, S, Config{Memory: 16 << 10, Algorithm: alg})
		sortPairs(got)
		if len(got) != len(want) {
			t.Fatalf("alg=%s: %d pairs, want %d", alg, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("alg=%s: pair %d mismatch", alg, i)
			}
		}
	}
}

func TestNoDuplicatesByConstruction(t *testing.T) {
	// Each build rectangle lives in exactly one bucket, so no dedup
	// machinery exists — verify none is needed.
	R := datagen.LARR(3, 1500).KPEs
	S := datagen.LAST(4, 1500).KPEs
	got, st := run(t, R, S, Config{Memory: 8 << 10})
	seen := make(map[geom.Pair]bool, len(got))
	for _, p := range got {
		if seen[p] {
			t.Fatalf("duplicate %v — the build side must not be replicated", p)
		}
		seen[p] = true
	}
	if st.Buckets < 2 {
		t.Fatalf("expected several buckets at 8KB, got %d", st.Buckets)
	}
}

func TestProbeSideReplicated(t *testing.T) {
	R := datagen.LARR(5, 2000).KPEs
	S := datagen.LAST(6, 2000).KPEs
	_, st := run(t, R, S, Config{Memory: 8 << 10})
	if st.CopiesS == 0 {
		t.Fatal("no probe copies written")
	}
	// Every S rectangle is either replicated into ≥1 bucket or counted as
	// an orphan; overlapping bucket extents make the sum exceed |S|.
	if st.CopiesS+st.Orphans < int64(len(S)) {
		t.Fatalf("copies (%d) + orphans (%d) below |S| (%d)", st.CopiesS, st.Orphans, len(S))
	}
}

func TestOrphansCannotJoin(t *testing.T) {
	// An S rectangle far away from every R rectangle overlaps no bucket
	// extent and must be dropped without affecting correctness.
	R := []geom.KPE{
		{ID: 1, Rect: geom.NewRect(0.1, 0.1, 0.2, 0.2)},
		{ID: 2, Rect: geom.NewRect(0.15, 0.15, 0.25, 0.25)},
	}
	S := []geom.KPE{
		{ID: 10, Rect: geom.NewRect(0.12, 0.12, 0.13, 0.13)}, // joins
		{ID: 11, Rect: geom.NewRect(0.9, 0.9, 0.95, 0.95)},   // orphan
	}
	got, st := run(t, R, S, Config{Memory: 1 << 20})
	want := naive(R, S)
	sortPairs(got)
	if len(got) != len(want) {
		t.Fatalf("%d pairs, want %d", len(got), len(want))
	}
	if st.Orphans != 1 {
		t.Fatalf("Orphans = %d, want 1", st.Orphans)
	}
}

func TestPhaseAccounting(t *testing.T) {
	R := datagen.LARR(7, 1500).KPEs
	S := datagen.LAST(8, 1500).KPEs
	d := newDisk()
	before := d.Stats()
	_, st := run(t, R, S, Config{Disk: d, Memory: 8 << 10})
	delta := d.Stats().Sub(before)
	if st.TotalIO().CostUnits != delta.CostUnits {
		t.Fatalf("phase I/O %.0f != disk delta %.0f", st.TotalIO().CostUnits, delta.CostUnits)
	}
	if st.PhaseIO[PhaseBuild].PagesWritten == 0 {
		t.Fatal("build phase must write buckets")
	}
	if st.PhaseIO[PhaseJoin].PagesRead == 0 {
		t.Fatal("join phase must read buckets")
	}
}

func TestEmptyInputs(t *testing.T) {
	R := datagen.Uniform(9, 100, 0.05)
	for _, pair := range [][2][]geom.KPE{{nil, R}, {R, nil}, {nil, nil}} {
		got, _ := run(t, pair[0], pair[1], Config{Memory: 8 << 10})
		if len(got) != 0 {
			t.Fatal("empty input must give empty join")
		}
	}
}

func TestBucketExtentsCoverBuildSide(t *testing.T) {
	R := datagen.LAST(10, 1000).KPEs
	exts := BucketExtents(R, 8)
	if len(exts) == 0 {
		t.Fatal("no extents")
	}
	for _, k := range R {
		covered := false
		for _, e := range exts {
			if e.ContainsRect(k.Rect) {
				covered = true
				break
			}
		}
		if !covered {
			t.Fatalf("rect %v not covered by any bucket extent", k.Rect)
		}
	}
	if BucketExtents(nil, 4) != nil || BucketExtents(R, 0) != nil {
		t.Fatal("degenerate inputs must return nil")
	}
}

func TestOracleProperty(t *testing.T) {
	f := func(seed int64, nMod uint8, memMod uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nMod)%120 + 5
		mk := func() []geom.KPE {
			ks := make([]geom.KPE, n)
			for i := range ks {
				cx, cy := rng.Float64(), rng.Float64()
				e := rng.Float64()
				ks[i] = geom.KPE{ID: uint64(i), Rect: geom.NewRect(cx, cy, cx+e*e*0.3, cy+e*e*0.3).ClampUnit()}
			}
			return ks
		}
		R, S := mk(), mk()
		var got []geom.Pair
		_, err := Join(R, S, Config{
			Disk:   newDisk(),
			Memory: int64(memMod)%8000 + 1200,
		}, func(p geom.Pair) { got = append(got, p) })
		if err != nil {
			return false
		}
		want := naive(R, S)
		sortPairs(got)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
