module spatialjoin

go 1.22
